//! The interactive source-level transformations.
//!
//! Section VI's worked example: *"to expose explicit data parallelism in
//! the model, the designer uses her/his application knowledge and invokes
//! re-coding transformations to split loops into code partitions, analyze
//! shared data accesses, split vectors of shared data, localize variable
//! accesses, and finally synchronize accesses to shared data by inserting
//! communication channels. … Additionally, code restructuring to prune the
//! control structure of the code and pointer recoding to replace pointer
//! expressions can be used to enhance the analyzability and
//! synthesizability of the models."*
//!
//! Every transformation validates its preconditions with the mini-C
//! dependence analyses and refuses (with an explanation) when the result
//! could change behaviour; the test-suite checks semantic preservation with
//! the interpreter oracle.

use mpsoc_minic::analysis::{accesses, MemRef};
use mpsoc_minic::ast::*;
use mpsoc_minic::{Function, Unit};

use crate::error::{Error, Result};

fn function_mut<'a>(unit: &'a mut Unit, func: &str) -> Result<&'a mut Function> {
    unit.function_mut(func)
        .ok_or_else(|| Error::NotFound(func.to_string()))
}

fn function<'a>(unit: &'a Unit, func: &str) -> Result<&'a Function> {
    unit.function(func)
        .ok_or_else(|| Error::NotFound(func.to_string()))
}

/// Splits the `loop_index`-th top-level for-loop of `func` into `parts`
/// consecutive loops over sub-ranges — the *loop splitting* step that
/// exposes data parallelism (each part can later become a task).
///
/// # Errors
///
/// [`Error::Precondition`] unless the loop has constant bounds, unit step,
/// and a body free of loop-carried dependences (no scalar writes except
/// the induction variable, no whole-array symbolic conflicts other than
/// through the induction variable, no calls).
pub fn split_loop(unit: &mut Unit, func: &str, loop_index: usize, parts: usize) -> Result<()> {
    if parts < 2 {
        return Err(Error::Precondition("need at least two parts".into()));
    }
    let mut ids = NodeIdGen::starting_at(unit.next_node_id());
    let f = function_mut(unit, func)?;
    let pos = nth_for(f, loop_index)?;
    let StmtKind::For {
        var,
        from,
        to,
        step,
        body,
    } = f.body[pos].kind.clone()
    else {
        unreachable!("nth_for returns for-loops");
    };
    let (Some(lo), Some(hi), Some(st)) = (from.const_eval(), to.const_eval(), step.const_eval())
    else {
        return Err(Error::Precondition(
            "loop bounds and step must be compile-time constants".into(),
        ));
    };
    if st != 1 {
        return Err(Error::Precondition("loop step must be 1".into()));
    }
    check_data_parallel(&body, &var)?;
    let n = hi - lo;
    if n < parts as i64 {
        return Err(Error::Precondition(format!(
            "cannot split {n} iterations into {parts} parts"
        )));
    }
    let chunk = (n + parts as i64 - 1) / parts as i64;
    let mut new_loops = Vec::new();
    for p in 0..parts as i64 {
        let s = lo + p * chunk;
        let e = (s + chunk).min(hi);
        if s >= e {
            break;
        }
        new_loops.push(Stmt {
            id: ids.fresh(),
            kind: StmtKind::For {
                var: var.clone(),
                from: Expr::lit(s),
                to: Expr::lit(e),
                step: Expr::lit(1),
                body: clone_with_fresh_ids(&body, &mut ids),
            },
        });
    }
    f.body.splice(pos..=pos, new_loops);
    Ok(())
}

/// Checks a loop body for loop-carried dependences: only array elements
/// indexed through the induction variable may be written, and scalars may
/// only be written if they are declared inside the body (privatisable).
fn check_data_parallel(body: &[Stmt], ivar: &str) -> Result<()> {
    let mut locals: Vec<String> = Vec::new();
    visit_stmts(body, &mut |s| {
        if let StmtKind::Decl { name, .. } = &s.kind {
            locals.push(name.clone());
        }
    });
    let mut problem = None;
    for s in body {
        let set = accesses(s);
        for w in &set.writes {
            match w {
                MemRef::Scalar(n) if n == ivar || locals.contains(n) => {}
                MemRef::Scalar(n) => {
                    problem = Some(format!("loop-carried scalar `{n}`"));
                }
                MemRef::Array(_, _) | MemRef::ArrayRange(_, _, _) => {}
                MemRef::Unknown => problem = Some("pointer store in body".into()),
                MemRef::World => problem = Some("call with unknown effects in body".into()),
            }
        }
    }
    match problem {
        Some(p) => Err(Error::Precondition(p)),
        None => Ok(()),
    }
}

fn nth_for(f: &Function, n: usize) -> Result<usize> {
    f.body
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.kind, StmtKind::For { .. }))
        .map(|(i, _)| i)
        .nth(n)
        .ok_or_else(|| Error::NotFound(format!("for-loop #{n} in `{}`", f.name)))
}

fn clone_with_fresh_ids(stmts: &[Stmt], ids: &mut NodeIdGen) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| {
            let kind = match &s.kind {
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => StmtKind::If {
                    cond: cond.clone(),
                    then_branch: clone_with_fresh_ids(then_branch, ids),
                    else_branch: clone_with_fresh_ids(else_branch, ids),
                },
                StmtKind::While { cond, body } => StmtKind::While {
                    cond: cond.clone(),
                    body: clone_with_fresh_ids(body, ids),
                },
                StmtKind::For {
                    var,
                    from,
                    to,
                    step,
                    body,
                } => StmtKind::For {
                    var: var.clone(),
                    from: from.clone(),
                    to: to.clone(),
                    step: step.clone(),
                    body: clone_with_fresh_ids(body, ids),
                },
                StmtKind::Block(body) => StmtKind::Block(clone_with_fresh_ids(body, ids)),
                other => other.clone(),
            };
            Stmt {
                id: ids.fresh(),
                kind,
            }
        })
        .collect()
}

/// Splits local array `array` (declared `int array[n]`) into one partition
/// per consecutive split loop that accesses disjoint index ranges — the
/// *vector splitting* step. Every access must be `array[<ivar>]` inside a
/// for-loop with constant bounds; each partition becomes `array__k` indexed
/// by `ivar - base`.
///
/// # Errors
///
/// [`Error::Precondition`] when accesses are not confined to such loops or
/// ranges overlap.
pub fn split_vector(unit: &mut Unit, func: &str, array: &str) -> Result<()> {
    let mut ids = NodeIdGen::starting_at(unit.next_node_id());
    let f = function_mut(unit, func)?;
    // Find the declaration.
    let decl_pos = f
        .body
        .iter()
        .position(|s| matches!(&s.kind, StmtKind::Decl { name, ty: Type::Array(Some(_)), .. } if name == array))
        .ok_or_else(|| Error::Precondition(format!("`{array}` is not a sized local array")))?;

    // Collect the loops that touch the array and their ranges.
    let mut ranges: Vec<(usize, i64, i64, String)> = Vec::new(); // (stmt idx, lo, hi, ivar)
    for (i, s) in f.body.iter().enumerate() {
        let set = accesses(s);
        let touches = set.all().any(|r| {
            matches!(r, MemRef::Array(..) | MemRef::ArrayRange(..)) && r.base() == Some(array)
        });
        if !touches {
            continue;
        }
        let StmtKind::For { var, from, to, .. } = &s.kind else {
            return Err(Error::Precondition(format!(
                "`{array}` is accessed outside a top-level for-loop"
            )));
        };
        let (Some(lo), Some(hi)) = (from.const_eval(), to.const_eval()) else {
            return Err(Error::Precondition("loop bounds must be constant".into()));
        };
        // All subscripts must be exactly the induction variable.
        let mut ok = true;
        visit_exprs(s, &mut |e| {
            if let Expr::Index(a, idx) = e {
                if a == array && **idx != Expr::var(var.clone()) {
                    ok = false;
                }
            }
        });
        if let StmtKind::Assign {
            lhs: LValue::Index(a, idx),
            ..
        } = &s.kind
        {
            if a == array && **idx != Expr::var(var.clone()) {
                ok = false;
            }
        }
        if !ok {
            return Err(Error::Precondition(format!(
                "`{array}` subscripts must be exactly the induction variable"
            )));
        }
        ranges.push((i, lo, hi, var.clone()));
    }
    if ranges.len() < 2 {
        return Err(Error::Precondition(format!(
            "`{array}` is used by fewer than two loops; nothing to split"
        )));
    }
    // Group loops by identical range; ranges across groups must be disjoint.
    let mut groups: Vec<(i64, i64, Vec<usize>)> = Vec::new();
    for (i, lo, hi, _) in &ranges {
        match groups
            .iter_mut()
            .find(|(glo, ghi, _)| glo == lo && ghi == hi)
        {
            Some((_, _, members)) => members.push(*i),
            None => groups.push((*lo, *hi, vec![*i])),
        }
    }
    for (a, ga) in groups.iter().enumerate() {
        for gb in groups.iter().skip(a + 1) {
            if ga.0 < gb.1 && gb.0 < ga.1 {
                return Err(Error::Precondition(format!(
                    "`{array}` ranges [{}, {}) and [{}, {}) overlap",
                    ga.0, ga.1, gb.0, gb.1
                )));
            }
        }
    }

    // Rewrite: replace the declaration with one partition per group and
    // rebase subscripts.
    let mut new_decls = Vec::new();
    for (k, (lo, hi, members)) in groups.iter().enumerate() {
        let part = format!("{array}__{k}");
        new_decls.push(Stmt {
            id: ids.fresh(),
            kind: StmtKind::Decl {
                name: part.clone(),
                ty: Type::Array(Some((hi - lo) as usize)),
                init: None,
            },
        });
        for &mi in members {
            rebase_array(&mut f.body[mi], array, &part, *lo);
        }
    }
    f.body.splice(decl_pos..=decl_pos, new_decls);
    Ok(())
}

fn rebase_array(stmt: &mut Stmt, array: &str, part: &str, base: i64) {
    fn fix_expr(e: &mut Expr, array: &str, part: &str, base: i64) {
        match e {
            Expr::Index(a, idx) => {
                fix_expr(idx, array, part, base);
                if a == array {
                    *a = part.to_string();
                    if base != 0 {
                        let old = std::mem::replace(&mut **idx, Expr::lit(0));
                        **idx = Expr::bin(BinOp::Sub, old, Expr::lit(base));
                    }
                }
            }
            Expr::Un(_, x) => fix_expr(x, array, part, base),
            Expr::Bin(_, l, r) => {
                fix_expr(l, array, part, base);
                fix_expr(r, array, part, base);
            }
            Expr::Call(_, args) => {
                for a in args {
                    fix_expr(a, array, part, base);
                }
            }
            Expr::Var(a) => {
                if a == array {
                    *a = part.to_string();
                }
            }
            Expr::Lit(_) => {}
        }
    }
    fn fix_stmt(s: &mut Stmt, array: &str, part: &str, base: i64) {
        match &mut s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    fix_expr(e, array, part, base);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                if let LValue::Index(a, idx) = lhs {
                    fix_expr(idx, array, part, base);
                    if a == array {
                        *a = part.to_string();
                        if base != 0 {
                            let old = std::mem::replace(&mut **idx, Expr::lit(0));
                            **idx = Expr::bin(BinOp::Sub, old, Expr::lit(base));
                        }
                    }
                }
                fix_expr(rhs, array, part, base);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                fix_expr(cond, array, part, base);
                for t in then_branch.iter_mut().chain(else_branch.iter_mut()) {
                    fix_stmt(t, array, part, base);
                }
            }
            StmtKind::While { cond, body } => {
                fix_expr(cond, array, part, base);
                for b in body.iter_mut() {
                    fix_stmt(b, array, part, base);
                }
            }
            StmtKind::For {
                from,
                to,
                step,
                body,
                ..
            } => {
                fix_expr(from, array, part, base);
                fix_expr(to, array, part, base);
                fix_expr(step, array, part, base);
                for b in body.iter_mut() {
                    fix_stmt(b, array, part, base);
                }
            }
            StmtKind::Return(Some(e)) => fix_expr(e, array, part, base),
            StmtKind::Return(None) => {}
            StmtKind::ExprStmt(e) => fix_expr(e, array, part, base),
            StmtKind::Block(body) => {
                for b in body.iter_mut() {
                    fix_stmt(b, array, part, base);
                }
            }
        }
    }
    fix_stmt(stmt, array, part, base);
}

/// Localizes scalar `var`: if it is declared at function scope but only
/// used inside a single top-level statement, the declaration moves into
/// that statement — the *variable access localization* step.
///
/// # Errors
///
/// [`Error::Precondition`] when the variable is used by more than one
/// top-level statement (localisation would change semantics).
pub fn localize_variable(unit: &mut Unit, func: &str, var: &str) -> Result<()> {
    let f = function_mut(unit, func)?;
    let decl_pos = f
        .body
        .iter()
        .position(|s| matches!(&s.kind, StmtKind::Decl { name, ty: Type::Int, .. } if name == var))
        .ok_or_else(|| Error::Precondition(format!("`{var}` is not a scalar declaration")))?;
    let users: Vec<usize> = f
        .body
        .iter()
        .enumerate()
        .filter(|&(i, s)| {
            i != decl_pos
                && accesses(s)
                    .all()
                    .any(|r| matches!(r, MemRef::Scalar(n) if n == var))
        })
        .map(|(i, _)| i)
        .collect();
    let [single] = users.as_slice() else {
        return Err(Error::Precondition(format!(
            "`{var}` is used by {} top-level statements; cannot localize",
            users.len()
        )));
    };
    let single = *single;
    let decl = f.body.remove(decl_pos);
    let target = if single > decl_pos {
        single - 1
    } else {
        single
    };
    match &mut f.body[target].kind {
        StmtKind::For { body, .. } | StmtKind::While { body, .. } | StmtKind::Block(body) => {
            body.insert(0, decl);
        }
        StmtKind::If { then_branch, .. } => then_branch.insert(0, decl),
        _ => {
            // Wrap the user and the declaration in a block.
            let mut ids = NodeIdGen::starting_at(0);
            let user = f.body.remove(target);
            let id = ids.fresh();
            f.body.insert(
                target,
                Stmt {
                    id,
                    kind: StmtKind::Block(vec![decl, user]),
                },
            );
        }
    }
    Ok(())
}

/// Inserts channel synchronisation around the producer/consumer pair of
/// top-level statements (`ch_send(array)` after the producer,
/// `ch_recv(array)` before the consumer) — the final step that makes the
/// communication explicit so partitioning tools can cut between the two.
///
/// # Errors
///
/// [`Error::Precondition`] when `producer >= consumer` or either index is
/// out of range.
pub fn insert_channel_sync(
    unit: &mut Unit,
    func: &str,
    producer: usize,
    consumer: usize,
    array: &str,
) -> Result<()> {
    let mut ids = NodeIdGen::starting_at(unit.next_node_id());
    let f = function_mut(unit, func)?;
    if producer >= consumer || consumer >= f.body.len() {
        return Err(Error::Precondition(format!(
            "need producer < consumer < {}",
            f.body.len()
        )));
    }
    let send = Stmt {
        id: ids.fresh(),
        kind: StmtKind::ExprStmt(Expr::Call("ch_send".into(), vec![Expr::var(array)])),
    };
    let recv = Stmt {
        id: ids.fresh(),
        kind: StmtKind::ExprStmt(Expr::Call("ch_recv".into(), vec![Expr::var(array)])),
    };
    // Insert recv first (higher index) so the producer index stays valid.
    f.body.insert(consumer, recv);
    f.body.insert(producer + 1, send);
    Ok(())
}

/// Pointer recoding: rewrites dereferences of pointers with statically
/// known targets into direct array accesses, then removes dead pointer
/// declarations. Handles `int *p = &a[K];` and `int *p = a;` where `p` is
/// never reassigned.
///
/// Returns the number of dereferences eliminated.
///
/// # Errors
///
/// [`Error::NotFound`] if the function is missing.
pub fn recode_pointers(unit: &mut Unit, func: &str) -> Result<usize> {
    let f = function_mut(unit, func)?;
    // Find candidate pointers: `int *p = &a[K]` / `int *p = a` at top level,
    // never written again anywhere in the function.
    let mut candidates: Vec<(String, String, Expr)> = Vec::new(); // (ptr, array, offset expr)
    for s in &f.body {
        if let StmtKind::Decl {
            name,
            ty: Type::Ptr,
            init: Some(init),
        } = &s.kind
        {
            match init {
                Expr::Un(UnOp::Addr, inner) => {
                    if let Expr::Index(a, idx) = &**inner {
                        candidates.push((name.clone(), a.clone(), (**idx).clone()));
                    }
                }
                Expr::Var(a) => candidates.push((name.clone(), a.clone(), Expr::lit(0))),
                _ => {}
            }
        }
    }
    // Disqualify reassigned pointers (any write to the scalar besides decl).
    candidates.retain(|(p, _, _)| {
        let mut writes = 0;
        visit_stmts(&f.body, &mut |s| match &s.kind {
            StmtKind::Assign {
                lhs: LValue::Var(n),
                ..
            } if n == p => writes += 1,
            StmtKind::Decl { name, .. } if name == p => {} // the defining decl
            _ => {}
        });
        writes == 0
    });
    if candidates.is_empty() {
        return Ok(0);
    }
    let mut replaced = 0usize;
    for stmt in &mut f.body {
        replaced += recode_stmt(stmt, &candidates);
    }
    // Remove now-dead pointer declarations (pointer no longer referenced).
    let f2 = function(unit, func)?.clone();
    let still_used = |p: &str| {
        let mut used = false;
        visit_stmts(&f2.body, &mut |s| {
            visit_exprs(s, &mut |e| {
                if let Expr::Var(n) = e {
                    if n == p {
                        used = true;
                    }
                }
            });
            if let StmtKind::Assign { lhs, .. } = &s.kind {
                if lhs.base() == p {
                    used = true;
                }
            }
        });
        used
    };
    let dead: Vec<String> = candidates
        .iter()
        .map(|(p, _, _)| p.clone())
        .filter(|p| !still_used(p))
        .collect();
    let f = function_mut(unit, func)?;
    f.body.retain(
        |s| !matches!(&s.kind, StmtKind::Decl { name, ty: Type::Ptr, .. } if dead.contains(name)),
    );
    Ok(replaced)
}

fn recode_stmt(stmt: &mut Stmt, cands: &[(String, String, Expr)]) -> usize {
    let mut n = 0;
    fn fix_expr(e: &mut Expr, cands: &[(String, String, Expr)], n: &mut usize) {
        // Rewrite *p -> a[K].
        if let Expr::Un(UnOp::Deref, inner) = e {
            if let Expr::Var(p) = &**inner {
                if let Some((_, a, off)) = cands.iter().find(|(c, _, _)| c == p) {
                    *e = Expr::index(a.clone(), off.clone());
                    *n += 1;
                    return;
                }
            }
        }
        match e {
            Expr::Index(_, i) => fix_expr(i, cands, n),
            Expr::Un(_, x) => fix_expr(x, cands, n),
            Expr::Bin(_, l, r) => {
                fix_expr(l, cands, n);
                fix_expr(r, cands, n);
            }
            Expr::Call(_, args) => {
                for a in args {
                    fix_expr(a, cands, n);
                }
            }
            _ => {}
        }
    }
    fn fix(s: &mut Stmt, cands: &[(String, String, Expr)], n: &mut usize) {
        match &mut s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    fix_expr(e, cands, n);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                fix_expr(rhs, cands, n);
                if let LValue::Index(_, i) = lhs {
                    fix_expr(i, cands, n);
                }
                if let LValue::Deref(p) = lhs {
                    if let Some((_, a, off)) = cands.iter().find(|(c, _, _)| c == p) {
                        *lhs = LValue::Index(a.clone(), Box::new(off.clone()));
                        *n += 1;
                    }
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                fix_expr(cond, cands, n);
                for t in then_branch.iter_mut().chain(else_branch.iter_mut()) {
                    fix(t, cands, n);
                }
            }
            StmtKind::While { cond, body } => {
                fix_expr(cond, cands, n);
                for b in body.iter_mut() {
                    fix(b, cands, n);
                }
            }
            StmtKind::For {
                from,
                to,
                step,
                body,
                ..
            } => {
                fix_expr(from, cands, n);
                fix_expr(to, cands, n);
                fix_expr(step, cands, n);
                for b in body.iter_mut() {
                    fix(b, cands, n);
                }
            }
            StmtKind::Return(Some(e)) => fix_expr(e, cands, n),
            StmtKind::Return(None) => {}
            StmtKind::ExprStmt(e) => fix_expr(e, cands, n),
            StmtKind::Block(body) => {
                for b in body.iter_mut() {
                    fix(b, cands, n);
                }
            }
        }
    }
    fix(stmt, cands, &mut n);
    n
}

/// Control-structure pruning: folds constant `if` conditions, drops empty
/// branches, and flattens nested blocks. Returns the number of nodes
/// removed.
///
/// # Errors
///
/// [`Error::NotFound`] if the function is missing.
pub fn prune_control(unit: &mut Unit, func: &str) -> Result<usize> {
    let f = function_mut(unit, func)?;
    let before = count_stmts(&f.body);
    f.body = prune_stmts(std::mem::take(&mut f.body));
    let after = count_stmts(&f.body);
    Ok(before.saturating_sub(after))
}

fn count_stmts(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    visit_stmts(stmts, &mut |_| n += 1);
    n
}

fn prune_stmts(stmts: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for mut s in stmts {
        match s.kind {
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let then_branch = prune_stmts(then_branch);
                let else_branch = prune_stmts(else_branch);
                match cond.const_eval() {
                    Some(v) => {
                        let taken = if v != 0 { then_branch } else { else_branch };
                        out.extend(taken);
                    }
                    None => {
                        if then_branch.is_empty() && else_branch.is_empty() {
                            // Condition side-effect-free in mini-C: drop.
                            continue;
                        }
                        s.kind = StmtKind::If {
                            cond,
                            then_branch,
                            else_branch,
                        };
                        out.push(s);
                    }
                }
            }
            StmtKind::Block(body) => {
                // Blocks without declarations flatten safely (single
                // function-wide namespace in mini-C).
                let body = prune_stmts(body);
                if body.iter().any(|b| matches!(b.kind, StmtKind::Decl { .. })) {
                    s.kind = StmtKind::Block(body);
                    out.push(s);
                } else {
                    out.extend(body);
                }
            }
            StmtKind::While { cond, body } => {
                if cond.const_eval() == Some(0) {
                    continue; // never runs
                }
                s.kind = StmtKind::While {
                    cond,
                    body: prune_stmts(body),
                };
                out.push(s);
            }
            StmtKind::For {
                var,
                from,
                to,
                step,
                body,
            } => {
                if let (Some(f0), Some(t0)) = (from.const_eval(), to.const_eval()) {
                    if f0 >= t0 {
                        continue; // zero-trip
                    }
                }
                s.kind = StmtKind::For {
                    var,
                    from,
                    to,
                    step,
                    body: prune_stmts(body),
                };
                out.push(s);
            }
            other => {
                s.kind = other;
                out.push(s);
            }
        }
    }
    out
}

/// Extracts top-level statements `[first, last]` of `func` into a new
/// function `new_fn`, replacing them with a call — the *structural
/// hierarchy* step that turns a phase of the computation into a pipeline
/// stage.
///
/// The extracted statements may read function parameters and write arrays
/// among them; scalar state must stay inside the extracted region.
///
/// # Errors
///
/// [`Error::Precondition`] for bad ranges, scalar flow across the cut, or a
/// name collision with an existing function.
pub fn extract_stage(
    unit: &mut Unit,
    func: &str,
    first: usize,
    last: usize,
    new_fn: &str,
) -> Result<()> {
    if unit.function(new_fn).is_some() {
        return Err(Error::Precondition(format!("function `{new_fn}` exists")));
    }
    let mut ids = NodeIdGen::starting_at(unit.next_node_id());
    let f = function(unit, func)?.clone();
    if first > last || last >= f.body.len() {
        return Err(Error::Precondition(format!(
            "bad range [{first}, {last}] in `{func}` of {} statements",
            f.body.len()
        )));
    }
    let region = &f.body[first..=last];
    // Scalars written in the region must not be read after it.
    let mut written = Vec::new();
    for s in region {
        for w in accesses(s).writes {
            if let MemRef::Scalar(n) = w {
                written.push(n);
            }
        }
    }
    for s in &f.body[last + 1..] {
        for r in accesses(s).reads {
            if let MemRef::Scalar(n) = &r {
                if written.contains(n) {
                    return Err(Error::Precondition(format!(
                        "scalar `{n}` flows out of the extracted region"
                    )));
                }
            }
        }
    }
    // Parameters of the new function: the original parameters that the
    // region references (arrays and scalars alike).
    let mut used: Vec<String> = Vec::new();
    for s in region {
        visit_exprs(s, &mut |e| {
            if let Expr::Var(n) | Expr::Index(n, _) = e {
                if !used.contains(n) {
                    used.push(n.clone());
                }
            }
        });
        if let StmtKind::Assign { lhs, .. } = &s.kind {
            let n = lhs.base().to_string();
            if !used.contains(&n) {
                used.push(n);
            }
        }
    }
    let params: Vec<Param> = f
        .params
        .iter()
        .filter(|p| used.contains(&p.name))
        .cloned()
        .collect();
    // Region-local declarations of names used: fine (they move along).
    let body: Vec<Stmt> = region.to_vec();
    let call_args: Vec<Expr> = params.iter().map(|p| Expr::var(p.name.clone())).collect();
    let new_function = Function {
        name: new_fn.to_string(),
        ret: Type::Void,
        params,
        body,
    };
    let fmut = function_mut(unit, func)?;
    let call = Stmt {
        id: ids.fresh(),
        kind: StmtKind::ExprStmt(Expr::Call(new_fn.to_string(), call_args)),
    };
    fmut.body.splice(first..=last, [call]);
    unit.functions.push(new_function);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_minic::interp::Interp;
    use mpsoc_minic::parse;

    /// Runs `func(n, buf)` before and after `transform` and checks the
    /// output buffer matches — the interpreter as semantic oracle.
    fn check_equiv(src: &str, func: &str, transform: impl FnOnce(&mut Unit)) {
        let reference = parse(src).unwrap();
        let mut transformed = parse(src).unwrap();
        transform(&mut transformed);
        let run = |unit: &Unit| {
            let mut it = Interp::new(unit);
            it.set_externs(Box::new(|name, _| {
                matches!(name, "ch_send" | "ch_recv").then_some(0)
            }));
            let buf = it.alloc_array(&[0; 32]);
            it.run(func, &[32, buf]).unwrap();
            it.read_array(buf, 32).unwrap()
        };
        assert_eq!(run(&reference), run(&transformed), "semantics changed");
    }

    const FILL: &str = "void fill(int n, int out[]) {\n\
         for (i = 0; i < 32; i = i + 1) { out[i] = i * i + 3; }\n\
         }";

    #[test]
    fn split_loop_preserves_semantics() {
        check_equiv(FILL, "fill", |u| {
            split_loop(u, "fill", 0, 4).unwrap();
        });
        let mut u = parse(FILL).unwrap();
        split_loop(&mut u, "fill", 0, 4).unwrap();
        let fors = u.functions[0]
            .body
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::For { .. }))
            .count();
        assert_eq!(fors, 4);
    }

    #[test]
    fn split_loop_rejects_loop_carried_scalar() {
        let src = "int sum(int n, int a[]) { int s = 0; for (i = 0; i < 8; i = i + 1) { s = s + a[i]; } return s; }";
        let mut u = parse(src).unwrap();
        let e = split_loop(&mut u, "sum", 0, 2).unwrap_err();
        assert!(e.to_string().contains("loop-carried"));
    }

    #[test]
    fn split_loop_rejects_symbolic_bounds() {
        let src = "void f(int n, int a[]) { for (i = 0; i < n; i = i + 1) { a[i] = i; } }";
        let mut u = parse(src).unwrap();
        assert!(split_loop(&mut u, "f", 0, 2).is_err());
    }

    #[test]
    fn split_loop_allows_private_scalars() {
        let src = "void f(int n, int out[]) { for (i = 0; i < 32; i = i + 1) { int t = i * 2; out[i] = t + 1; } }";
        check_equiv(src, "f", |u| {
            split_loop(u, "f", 0, 2).unwrap();
        });
    }

    #[test]
    fn split_vector_partitions_disjoint_ranges() {
        let src = "void f(int n, int out[]) {\n\
             int tmp[32];\n\
             for (i = 0; i < 16; i = i + 1) { tmp[i] = i * 3; }\n\
             for (i = 16; i < 32; i = i + 1) { tmp[i] = i * 5; }\n\
             for (i = 0; i < 16; i = i + 1) { out[i] = tmp[i]; }\n\
             for (i = 16; i < 32; i = i + 1) { out[i] = tmp[i]; }\n\
             }";
        check_equiv(src, "f", |u| {
            split_vector(u, "f", "tmp").unwrap();
        });
        let mut u = parse(src).unwrap();
        split_vector(&mut u, "f", "tmp").unwrap();
        let printed = mpsoc_minic::print_unit(&u);
        assert!(printed.contains("int tmp__0[16];"));
        assert!(printed.contains("int tmp__1[16];"));
        assert!(!printed.contains("int tmp[32];"));
    }

    #[test]
    fn split_vector_rejects_overlap() {
        let src = "void f(int n, int a[]) {\n\
             int tmp[32];\n\
             for (i = 0; i < 20; i = i + 1) { tmp[i] = i; }\n\
             for (i = 10; i < 32; i = i + 1) { tmp[i] = i; }\n\
             }";
        let mut u = parse(src).unwrap();
        assert!(split_vector(&mut u, "f", "tmp").is_err());
    }

    #[test]
    fn localize_moves_decl_into_loop() {
        let src = "void f(int n, int out[]) {\n\
             int t;\n\
             for (i = 0; i < 32; i = i + 1) { t = i + 1; out[i] = t; }\n\
             }";
        check_equiv(src, "f", |u| {
            localize_variable(u, "f", "t").unwrap();
        });
        let mut u = parse(src).unwrap();
        localize_variable(&mut u, "f", "t").unwrap();
        assert_eq!(u.functions[0].body.len(), 1, "decl absorbed into loop");
    }

    #[test]
    fn localize_rejects_multi_user_scalars() {
        let src = "void f(int n, int a[]) { int t = 1; a[0] = t; a[1] = t; }";
        let mut u = parse(src).unwrap();
        assert!(localize_variable(&mut u, "f", "t").is_err());
    }

    #[test]
    fn channel_sync_inserts_matched_pair() {
        let src = "void f(int n, int out[]) {\n\
             for (i = 0; i < 32; i = i + 1) { out[i] = i; }\n\
             for (i = 0; i < 32; i = i + 1) { out[i] = out[i] + 1; }\n\
             }";
        check_equiv(src, "f", |u| {
            insert_channel_sync(u, "f", 0, 1, "out").unwrap();
        });
        let mut u = parse(src).unwrap();
        insert_channel_sync(&mut u, "f", 0, 1, "out").unwrap();
        let printed = mpsoc_minic::print_unit(&u);
        assert!(printed.contains("ch_send(out);"));
        assert!(printed.contains("ch_recv(out);"));
    }

    #[test]
    fn pointer_recoding_eliminates_derefs() {
        let src = "void f(int n, int out[]) {\n\
             int *p = &out[3];\n\
             *p = 42;\n\
             out[0] = *p + 1;\n\
             }";
        check_equiv(src, "f", |u| {
            let n = recode_pointers(u, "f").unwrap();
            assert_eq!(n, 2);
        });
        let mut u = parse(src).unwrap();
        recode_pointers(&mut u, "f").unwrap();
        let printed = mpsoc_minic::print_unit(&u);
        assert!(!printed.contains('*'), "pointers remain:\n{printed}");
        // Analyzability is restored.
        let score = mpsoc_minic::analysis::analyzability(&u, &u.functions[0]);
        assert_eq!(score.pointer_derefs, 0);
    }

    #[test]
    fn pointer_recoding_skips_reassigned_pointers() {
        let src = "void f(int n, int out[]) {\n\
             int *p = &out[1];\n\
             p = &out[2];\n\
             *p = 9;\n\
             }";
        let mut u = parse(src).unwrap();
        assert_eq!(recode_pointers(&mut u, "f").unwrap(), 0);
    }

    #[test]
    fn prune_folds_constants_and_flattens() {
        let src = "void f(int n, int out[]) {\n\
             if (1) { out[0] = 5; } else { out[0] = 9; }\n\
             if (0) { out[1] = 7; }\n\
             while (0) { out[2] = 8; }\n\
             { out[3] = 4; }\n\
             for (i = 9; i < 3; i = i + 1) { out[4] = 1; }\n\
             }";
        check_equiv(src, "f", |u| {
            prune_control(u, "f").unwrap();
        });
        let mut u = parse(src).unwrap();
        let removed = prune_control(&mut u, "f").unwrap();
        assert!(removed >= 4, "removed {removed}");
        let printed = mpsoc_minic::print_unit(&u);
        assert!(!printed.contains("if"));
        assert!(!printed.contains("while"));
    }

    #[test]
    fn extract_stage_creates_function_and_call() {
        let src = "void f(int n, int out[]) {\n\
             for (i = 0; i < 32; i = i + 1) { out[i] = i; }\n\
             for (i = 0; i < 32; i = i + 1) { out[i] = out[i] * 2; }\n\
             }";
        check_equiv(src, "f", |u| {
            extract_stage(u, "f", 1, 1, "scale_stage").unwrap();
        });
        let mut u = parse(src).unwrap();
        extract_stage(&mut u, "f", 1, 1, "scale_stage").unwrap();
        assert!(u.function("scale_stage").is_some());
        let printed = mpsoc_minic::print_unit(&u);
        assert!(printed.contains("scale_stage(out);"));
    }

    #[test]
    fn extract_stage_rejects_scalar_outflow() {
        let src = "void f(int n, int out[]) { int t = 3; out[0] = t; }";
        let mut u = parse(src).unwrap();
        let e = extract_stage(&mut u, "f", 0, 0, "stage").unwrap_err();
        assert!(e.to_string().contains("flows out"));
    }
}
