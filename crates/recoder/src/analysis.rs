//! Shared-data access analysis — the recoder's inspection step.
//!
//! Section VI's walkthrough has the designer *"analyze shared data
//! accesses"* before splitting vectors and inserting channels. This module
//! produces that report: for each array of a function, which top-level
//! statements read it and which write it, whether the accesses partition
//! into disjoint index ranges (safe to split), and which statement pairs
//! would need a synchronisation channel if separated onto different
//! processors.

use mpsoc_minic::analysis::{accesses, MemRef};
use mpsoc_minic::{Function, Unit};

use crate::error::{Error, Result};

/// How one statement touches one array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayUse {
    /// Top-level statement index.
    pub stmt: usize,
    /// Reads the array.
    pub reads: bool,
    /// Writes the array.
    pub writes: bool,
    /// The index range `[lo, hi)` if the analysis could bound it.
    pub range: Option<(i64, i64)>,
}

/// The report for one array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedArray {
    /// Array name.
    pub name: String,
    /// Every top-level statement touching it.
    pub uses: Vec<ArrayUse>,
    /// Whether all *write* ranges are bounded and pairwise disjoint — the
    /// precondition for vector splitting.
    pub splittable: bool,
    /// Producer→consumer statement pairs that need a channel if the two
    /// statements are mapped to different processors.
    pub channel_sites: Vec<(usize, usize)>,
}

/// Analyses the shared-array usage of `func`.
///
/// # Errors
///
/// [`Error::NotFound`] if the function does not exist.
pub fn shared_arrays(unit: &Unit, func: &str) -> Result<Vec<SharedArray>> {
    let f: &Function = unit
        .function(func)
        .ok_or_else(|| Error::NotFound(func.to_string()))?;
    let sets: Vec<_> = f.body.iter().map(accesses).collect();
    // Collect array names in deterministic order.
    let mut names: Vec<String> = Vec::new();
    for set in &sets {
        for r in set.all() {
            if let MemRef::Array(n, _) | MemRef::ArrayRange(n, _, _) = r {
                if !names.contains(n) {
                    names.push(n.clone());
                }
            }
        }
    }
    let mut out = Vec::new();
    for name in names {
        let mut uses = Vec::new();
        for (i, set) in sets.iter().enumerate() {
            let touch =
                |refs: &std::collections::BTreeSet<MemRef>| -> (bool, Option<(i64, i64)>, bool) {
                    let mut any = false;
                    let mut bounded = true;
                    let mut range: Option<(i64, i64)> = None;
                    for r in refs {
                        match r {
                            MemRef::Array(n, idx) if *n == name => {
                                any = true;
                                match idx {
                                    Some(k) => {
                                        range = Some(match range {
                                            Some((lo, hi)) => (lo.min(*k), hi.max(k + 1)),
                                            None => (*k, k + 1),
                                        })
                                    }
                                    None => bounded = false,
                                }
                            }
                            MemRef::ArrayRange(n, lo, hi) if *n == name => {
                                any = true;
                                range = Some(match range {
                                    Some((l, h)) => (l.min(*lo), h.max(*hi)),
                                    None => (*lo, *hi),
                                });
                            }
                            _ => {}
                        }
                    }
                    (any, if bounded { range } else { None }, bounded)
                };
            let (r_any, r_range, r_bounded) = touch(&set.reads);
            let (w_any, w_range, w_bounded) = touch(&set.writes);
            if r_any || w_any {
                let range = match (r_bounded && w_bounded, r_range, w_range) {
                    (false, _, _) => None,
                    (true, Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
                    (true, Some(r), None) | (true, None, Some(r)) => Some(r),
                    (true, None, None) => None,
                };
                uses.push(ArrayUse {
                    stmt: i,
                    reads: r_any,
                    writes: w_any,
                    range,
                });
            }
        }
        // Splittable: every writer has a bounded range and writer ranges
        // are pairwise disjoint.
        let writers: Vec<&ArrayUse> = uses.iter().filter(|u| u.writes).collect();
        let splittable = !writers.is_empty()
            && writers.iter().all(|u| u.range.is_some())
            && writers.iter().enumerate().all(|(i, a)| {
                writers.iter().skip(i + 1).all(|b| {
                    let (alo, ahi) = a.range.expect("checked");
                    let (blo, bhi) = b.range.expect("checked");
                    ahi <= blo || bhi <= alo
                })
            });
        // Channel sites: writer before reader with overlapping (or
        // unbounded) ranges.
        let mut channel_sites = Vec::new();
        for w in uses.iter().filter(|u| u.writes) {
            for r in uses.iter().filter(|u| u.reads && u.stmt > w.stmt) {
                let overlap = match (w.range, r.range) {
                    (Some((alo, ahi)), Some((blo, bhi))) => alo < bhi && blo < ahi,
                    _ => true,
                };
                if overlap {
                    channel_sites.push((w.stmt, r.stmt));
                }
            }
        }
        out.push(SharedArray {
            name,
            uses,
            splittable,
            channel_sites,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_minic::parse;

    #[test]
    fn report_identifies_producer_consumer() {
        let u = parse(
            "void f(int n, int out[]) {\n\
             int tmp[32];\n\
             for (i = 0; i < 32; i = i + 1) { tmp[i] = i; }\n\
             for (i = 0; i < 32; i = i + 1) { out[i] = tmp[i]; }\n\
             }",
        )
        .unwrap();
        let report = shared_arrays(&u, "f").unwrap();
        let tmp = report.iter().find(|a| a.name == "tmp").unwrap();
        assert_eq!(tmp.uses.len(), 2);
        assert_eq!(tmp.channel_sites, vec![(1, 2)]);
        // One writer with a full range: trivially "splittable" set of one.
        assert!(tmp.splittable);
    }

    #[test]
    fn disjoint_halves_are_splittable() {
        let u = parse(
            "void f(int n, int a[]) {\n\
             int tmp[32];\n\
             for (i = 0; i < 16; i = i + 1) { tmp[i] = i; }\n\
             for (i = 16; i < 32; i = i + 1) { tmp[i] = i * 2; }\n\
             }",
        )
        .unwrap();
        let report = shared_arrays(&u, "f").unwrap();
        let tmp = report.iter().find(|a| a.name == "tmp").unwrap();
        assert!(tmp.splittable);
        assert_eq!(tmp.uses[0].range, Some((0, 16)));
        assert_eq!(tmp.uses[1].range, Some((16, 32)));
        assert!(tmp.channel_sites.is_empty());
    }

    #[test]
    fn overlapping_writes_not_splittable() {
        let u = parse(
            "void f(int n, int a[]) {\n\
             int tmp[32];\n\
             for (i = 0; i < 20; i = i + 1) { tmp[i] = i; }\n\
             for (i = 10; i < 32; i = i + 1) { tmp[i] = i; }\n\
             }",
        )
        .unwrap();
        let report = shared_arrays(&u, "f").unwrap();
        let tmp = report.iter().find(|a| a.name == "tmp").unwrap();
        assert!(!tmp.splittable);
    }

    #[test]
    fn symbolic_subscripts_are_unbounded() {
        let u = parse("void f(int n, int a[], int j) { a[j] = 1; int x = a[0]; }").unwrap();
        let report = shared_arrays(&u, "f").unwrap();
        let a = report.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(a.uses[0].range, None);
        assert!(!a.splittable);
        assert_eq!(a.channel_sites, vec![(0, 1)]);
    }

    #[test]
    fn missing_function_reported() {
        let u = parse("void f(void) { return; }").unwrap();
        assert!(shared_arrays(&u, "nope").is_err());
    }
}
