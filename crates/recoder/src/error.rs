//! Recoder error type.

use std::fmt;

/// Errors raised by recoding transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A function/statement/variable was not found.
    NotFound(String),
    /// The transformation's preconditions do not hold; the message explains
    /// which analysis failed — the designer may *"concur, augment or
    /// overrule"* (Section VI), but the default is to refuse.
    Precondition(String),
    /// The designer's manual edit did not parse.
    Parse(String),
    /// Nothing to undo.
    NothingToUndo,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(n) => write!(f, "`{n}` not found"),
            Error::Precondition(m) => write!(f, "transformation precondition failed: {m}"),
            Error::Parse(m) => write!(f, "edit does not parse: {m}"),
            Error::NothingToUndo => write!(f, "nothing to undo"),
        }
    }
}

impl std::error::Error for Error {}

impl From<mpsoc_minic::Error> for Error {
    fn from(e: mpsoc_minic::Error) -> Self {
        Error::Parse(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;
