//! # mpsoc-recoder — designer-controlled source recoding (Section VI)
//!
//! UC Irvine's Source Recoder, as presented in *"Programming MPSoC
//! Platforms: Road Works Ahead!"* (DATE 2009, Section VI and Figure 3),
//! attacks the *specification bottleneck*: *"about 90% of the system design
//! time is spent on coding and re-coding of MPSoC models even in the
//! presence of algorithms available as C code."* Instead of a fully
//! automatic parallelising compiler, it offers *interactive, chained,
//! designer-controlled transformations* over a model that is kept
//! simultaneously as text and as an AST.
//!
//! * [`recoder`] — the editor/AST union of Figure 3: document ↔ AST
//!   synchronisation, undo, and the productivity ledger.
//! * [`transforms`] — the transformation set from the paper's walkthrough:
//!   loop splitting, vector (array) splitting, variable localisation,
//!   channel-synchronisation insertion, pointer recoding, control-structure
//!   pruning, and pipeline-stage extraction.
//!
//! Every transformation refuses to run when its static preconditions fail,
//! mirroring the paper's stance that the tool and the designer share the
//! responsibility for correctness. The test-suite additionally verifies
//! semantic preservation with the mini-C interpreter.
//!
//! ## Quickstart
//!
//! ```
//! use mpsoc_recoder::recoder::Recoder;
//! use mpsoc_recoder::transforms::split_loop;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut session = Recoder::from_source(
//!     "void fill(int n, int out[]) {\n\
//!      for (i = 0; i < 64; i = i + 1) { out[i] = i * 3; }\n\
//!      }",
//! )?;
//! session.apply(|unit| split_loop(unit, "fill", 0, 4))?;
//! assert_eq!(session.document().matches("for (").count(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod error;
pub mod recoder;
pub mod transforms;

pub use crate::analysis::{shared_arrays, ArrayUse, SharedArray};
pub use crate::error::{Error, Result};
pub use crate::recoder::{Recoder, RecodingStats};
