//! The Source Recoder: editor + AST, kept in sync (Figure 3).
//!
//! *"Our Source Recoder is an intelligent union of editor, compiler, and
//! transformation and analysis tools. It consists of a Text Editor
//! maintaining a Document Object and a set of Analysis and Transformation
//! Tools working on an Abstract Syntax Tree (AST) of the design model.
//! Preprocessor and Parser apply changes in the document to the AST, and a
//! Code Generator synchronizes changes in the AST to the document object."*
//!
//! [`Recoder`] holds both representations. Manual typing enters through
//! [`Recoder::edit_text`] (document → parser → AST); transformations enter
//! through [`Recoder::apply`] (AST → code generator → document). Every
//! operation is undoable, and the session keeps the productivity ledger the
//! paper's evaluation is based on: *designer actions* vs. the *manual line
//! edits* the same change would have required.

use mpsoc_minic::printer::print_unit;
use mpsoc_minic::{parse, Unit};

use crate::error::{Error, Result};

/// Productivity ledger of a recoding session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecodingStats {
    /// Automated transformation invocations (one designer action each).
    pub automated_steps: u64,
    /// Manual text edits performed (one designer action each).
    pub manual_edits: u64,
    /// Source lines that changed due to automated transformations — the
    /// work a designer without the recoder would have typed by hand.
    pub lines_changed_by_transforms: u64,
    /// Source lines changed by manual edits.
    pub lines_changed_manually: u64,
}

impl RecodingStats {
    /// The productivity factor: hand-edited lines a transformation step
    /// replaced, per designer action. The paper reports *"productivity
    /// gains up to two orders of magnitude over manual recoding"*.
    pub fn productivity_factor(&self) -> f64 {
        if self.automated_steps == 0 {
            1.0
        } else {
            (self.lines_changed_by_transforms as f64 / self.automated_steps as f64).max(1.0)
        }
    }
}

/// An undoable snapshot.
#[derive(Clone, Debug)]
struct Snapshot {
    unit: Unit,
    document: String,
}

/// The recoder session.
#[derive(Debug)]
pub struct Recoder {
    unit: Unit,
    document: String,
    undo_stack: Vec<Snapshot>,
    stats: RecodingStats,
}

impl Recoder {
    /// Opens a session on `source`.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] when the source is not valid mini-C.
    pub fn from_source(source: &str) -> Result<Self> {
        let unit = parse(source)?;
        // Normalise the document through the code generator so that diffs
        // measure semantic change, not formatting.
        let document = print_unit(&unit);
        Ok(Recoder {
            unit,
            document,
            undo_stack: Vec::new(),
            stats: RecodingStats::default(),
        })
    }

    /// The current document text (always in sync with the AST).
    pub fn document(&self) -> &str {
        &self.document
    }

    /// The current AST.
    pub fn unit(&self) -> &Unit {
        &self.unit
    }

    /// The session's productivity ledger.
    pub fn stats(&self) -> RecodingStats {
        self.stats
    }

    /// The designer types: replaces the document, reparses, and counts the
    /// changed lines as manual effort.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] if the new text does not parse; the session is
    /// unchanged in that case (the editor refuses to desynchronise).
    pub fn edit_text(&mut self, new_source: &str) -> Result<()> {
        let unit = parse(new_source)?;
        let document = print_unit(&unit);
        let changed = line_diff(&self.document, &document);
        self.undo_stack.push(Snapshot {
            unit: std::mem::take(&mut self.unit),
            document: std::mem::take(&mut self.document),
        });
        self.unit = unit;
        self.document = document;
        self.stats.manual_edits += 1;
        self.stats.lines_changed_manually += changed;
        Ok(())
    }

    /// Applies a transformation to the AST; on success the document is
    /// regenerated and the changed lines are credited to the ledger.
    ///
    /// # Errors
    ///
    /// Whatever the transformation returns; the session is unchanged on
    /// error.
    pub fn apply<T>(&mut self, transform: impl FnOnce(&mut Unit) -> Result<T>) -> Result<T> {
        let mut candidate = self.unit.clone();
        let value = transform(&mut candidate)?;
        let document = print_unit(&candidate);
        let changed = line_diff(&self.document, &document);
        self.undo_stack.push(Snapshot {
            unit: std::mem::replace(&mut self.unit, candidate),
            document: std::mem::replace(&mut self.document, document),
        });
        self.stats.automated_steps += 1;
        self.stats.lines_changed_by_transforms += changed;
        Ok(value)
    }

    /// Reverts the most recent edit or transformation.
    ///
    /// # Errors
    ///
    /// [`Error::NothingToUndo`] on an empty history.
    pub fn undo(&mut self) -> Result<()> {
        let snap = self.undo_stack.pop().ok_or(Error::NothingToUndo)?;
        self.unit = snap.unit;
        self.document = snap.document;
        Ok(())
    }

    /// Depth of the undo history.
    pub fn history_len(&self) -> usize {
        self.undo_stack.len()
    }
}

/// Counts differing lines between two documents (symmetric difference of
/// line sequences, aligned greedily) — the effort metric for the ledger.
fn line_diff(old: &str, new: &str) -> u64 {
    let old: Vec<&str> = old.lines().collect();
    let new: Vec<&str> = new.lines().collect();
    // Longest common subsequence length via DP (documents are small).
    let (n, m) = (old.len(), new.len());
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if old[i] == new[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let lcs = dp[0][0];
    ((n - lcs) + (m - lcs)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transforms::{prune_control, recode_pointers, split_loop};

    const SRC: &str = "void fill(int n, int out[]) {\n\
         for (i = 0; i < 32; i = i + 1) { out[i] = i * i; }\n\
         }";

    #[test]
    fn open_normalises_document() {
        let r = Recoder::from_source(SRC).unwrap();
        assert!(r.document().contains("for (i = 0; i < 32; i = i + 1) {"));
    }

    #[test]
    fn apply_updates_ast_and_document() {
        let mut r = Recoder::from_source(SRC).unwrap();
        r.apply(|u| split_loop(u, "fill", 0, 4)).unwrap();
        assert_eq!(r.document().matches("for (").count(), 4);
        assert_eq!(r.stats().automated_steps, 1);
        assert!(r.stats().lines_changed_by_transforms >= 6);
    }

    #[test]
    fn failed_transform_leaves_session_intact() {
        let mut r = Recoder::from_source(SRC).unwrap();
        let before = r.document().to_string();
        assert!(r.apply(|u| split_loop(u, "missing", 0, 2)).is_err());
        assert_eq!(r.document(), before);
        assert_eq!(r.stats().automated_steps, 0);
        assert_eq!(r.history_len(), 0);
    }

    #[test]
    fn edit_text_counts_manual_effort() {
        let mut r = Recoder::from_source(SRC).unwrap();
        let edited = r.document().replace("i * i", "i * i + 1");
        r.edit_text(&edited).unwrap();
        assert_eq!(r.stats().manual_edits, 1);
        assert_eq!(r.stats().lines_changed_manually, 2); // one line out, one in
                                                         // The code generator renormalises the expression's parentheses.
        assert!(r.document().contains("(i * i) + 1"));
    }

    #[test]
    fn bad_edit_rejected_session_unchanged() {
        let mut r = Recoder::from_source(SRC).unwrap();
        let before = r.document().to_string();
        assert!(r.edit_text("void broken(").is_err());
        assert_eq!(r.document(), before);
    }

    #[test]
    fn undo_restores_both_representations() {
        let mut r = Recoder::from_source(SRC).unwrap();
        let before = r.document().to_string();
        r.apply(|u| split_loop(u, "fill", 0, 2)).unwrap();
        assert_ne!(r.document(), before);
        r.undo().unwrap();
        assert_eq!(r.document(), before);
        assert!(r.undo().is_err());
    }

    #[test]
    fn transformation_chain_accumulates_productivity() {
        let src = "void f(int n, int out[]) {\n\
             int *p = &out[0];\n\
             *p = 7;\n\
             if (1) { out[1] = 2; } else { out[1] = 3; }\n\
             for (i = 0; i < 32; i = i + 1) { out[i] = out[i] + i; }\n\
             }";
        let mut r = Recoder::from_source(src).unwrap();
        r.apply(|u| recode_pointers(u, "f")).unwrap();
        r.apply(|u| prune_control(u, "f")).unwrap();
        r.apply(|u| split_loop(u, "f", 0, 4)).unwrap();
        let stats = r.stats();
        assert_eq!(stats.automated_steps, 3);
        assert!(stats.productivity_factor() > 1.0);
        // The resulting model is fully analyzable.
        let score = mpsoc_minic::analysis::analyzability(r.unit(), &r.unit().functions[0]);
        assert!(score.is_fully_analyzable());
    }

    #[test]
    fn line_diff_counts_changes() {
        assert_eq!(line_diff("a\nb\nc", "a\nb\nc"), 0);
        assert_eq!(line_diff("a\nb\nc", "a\nX\nc"), 2);
        assert_eq!(line_diff("a", "a\nb\nc"), 2);
    }
}
