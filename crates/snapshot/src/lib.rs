//! # mpsoc-snapshot — versioned binary checkpoint images
//!
//! Section VII of *"Programming MPSoC Platforms: Road Works Ahead!"*
//! (DATE 2009) makes deterministic, non-intrusive observability the
//! virtual platform's killer feature. This crate supplies the substrate
//! that turns observability into *time travel*: a hand-rolled, versioned,
//! zero-dependency binary serialization layer used by `mpsoc-platform` to
//! capture and restore whole-platform state bit-exactly.
//!
//! Three pieces:
//!
//! * [`wire`] — the little-endian fixed-width [`Writer`]/[`Reader`] pair.
//! * [`Snapshot`] — the save/load trait implemented by every platform
//!   component (cores, caches, memories, interconnect, peripherals,
//!   signals, pending DMA, …).
//! * [`Image`] — framing: magic, format version, payload length, and an
//!   FNV-1a 64 checksum so corrupt or truncated images are rejected
//!   before any state is touched.
//!
//! The design invariant the whole suite property-tests: for any platform
//! `p`, `restore(capture(p))` continues **bit-identically** to an
//! uncheckpointed run — same `StepEvent` stream, same final memory
//! checksum — under both scheduler modes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod wire;

pub use crate::error::{SnapError, SnapResult};
pub use crate::wire::{Reader, Writer};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`, seeded with the standard offset basis.
///
/// Used both for image integrity checksums and as the suite's canonical
/// "state checksum" when comparing checkpointed and uncheckpointed runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_with(FNV_OFFSET, bytes)
}

/// FNV-1a 64-bit hash continuing from a previous hash value `state`.
///
/// Lets callers fold several buffers into one checksum without
/// concatenating them.
pub fn fnv1a64_with(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A type that can be written to and reconstructed from the snapshot wire
/// format.
///
/// Implementations must be *total*: every reachable runtime state of the
/// type round-trips exactly. Encoding is infallible; decoding returns
/// [`SnapError`] on malformed input.
pub trait Snapshot: Sized {
    /// Append this value's encoding to `w`.
    fn save(&self, w: &mut Writer);
    /// Decode a value previously written by [`Snapshot::save`].
    fn load(r: &mut Reader<'_>) -> SnapResult<Self>;
}

macro_rules! scalar_snapshot {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Snapshot for $ty {
            fn save(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
                r.$get()
            }
        }
    };
}

scalar_snapshot!(u8, put_u8, get_u8);
scalar_snapshot!(u16, put_u16, get_u16);
scalar_snapshot!(u32, put_u32, get_u32);
scalar_snapshot!(u64, put_u64, get_u64);
scalar_snapshot!(i64, put_i64, get_i64);
scalar_snapshot!(bool, put_bool, get_bool);
scalar_snapshot!(usize, put_usize, get_usize);

impl Snapshot for String {
    fn save(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
        r.get_str()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn save(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            tag => Err(SnapError::BadTag {
                what: "Option",
                tag: u64::from(tag),
            }),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
        let n = r.get_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<T: Snapshot, const N: usize> Snapshot for [T; N] {
    fn save(&self, w: &mut Writer) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> SnapResult<Self> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::Malformed("array length mismatch".into()))
    }
}

/// Image framing: seals a payload into a self-describing, checksummed
/// byte image and validates the frame on open.
///
/// Layout (all little-endian):
///
/// ```text
/// magic   u32    — owner-chosen constant, e.g. b"MPSS"
/// version u16    — owner-chosen format version
/// length  u64    — payload byte count
/// fnv1a64 u64    — checksum over the payload bytes
/// payload [u8]
/// ```
#[derive(Debug)]
pub struct Image;

impl Image {
    /// Frame header size in bytes.
    pub const HEADER_LEN: usize = 4 + 2 + 8 + 8;

    /// Wrap `payload` in a frame carrying `magic`, `version`, its length,
    /// and its FNV-1a 64 checksum.
    pub fn seal(magic: u32, version: u16, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER_LEN + payload.len());
        out.extend_from_slice(&magic.to_le_bytes());
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Validate the frame of `image` (magic, version, length, checksum)
    /// and return the payload slice.
    ///
    /// A version mismatch is reported with the generic context `"image"`;
    /// owners of a format should prefer [`Image::open_as`] so the error
    /// names which decoder refused the stale image.
    pub fn open(image: &[u8], magic: u32, version: u16) -> SnapResult<&[u8]> {
        Self::open_as(image, magic, version, "image")
    }

    /// Like [`Image::open`], but a version mismatch carries `what` — the
    /// image kind and, by convention, the defining source file (e.g. built
    /// with `concat!("platform full image (", file!(), ")")`) — so stale
    /// images fail with a clearly located error instead of a silent
    /// misparse further into the payload.
    pub fn open_as<'a>(
        image: &'a [u8],
        magic: u32,
        version: u16,
        what: &'static str,
    ) -> SnapResult<&'a [u8]> {
        let mut r = Reader::new(image);
        let found_magic = r.get_u32()?;
        if found_magic != magic {
            return Err(SnapError::BadMagic {
                found: found_magic,
                expected: magic,
            });
        }
        let found_version = r.get_u16()?;
        if found_version != version {
            return Err(SnapError::BadVersion {
                what,
                found: found_version,
                expected: version,
            });
        }
        let len = r.get_usize()?;
        let stored = r.get_u64()?;
        let payload = r.get_bytes(len)?;
        r.finish()?;
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(SnapError::ChecksumMismatch { stored, computed });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: u32 = u32::from_le_bytes(*b"TEST");

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_chaining_matches_concatenation() {
        let whole = fnv1a64(b"hello world");
        let chained = fnv1a64_with(fnv1a64(b"hello "), b"world");
        assert_eq!(whole, chained);
    }

    #[test]
    fn container_round_trip() {
        let v: Vec<Option<(String, u64)>> = vec![
            None,
            Some(("isr".to_string(), 42)),
            Some((String::new(), u64::MAX)),
        ];
        let arr: [i64; 4] = [-1, 0, i64::MAX, i64::MIN];
        let mut w = Writer::new();
        v.save(&mut w);
        arr.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Vec::<Option<(String, u64)>>::load(&mut r).unwrap(), v);
        assert_eq!(<[i64; 4]>::load(&mut r).unwrap(), arr);
        r.finish().unwrap();
    }

    #[test]
    fn image_seal_open_round_trip() {
        let payload = b"platform state bytes".to_vec();
        let image = Image::seal(MAGIC, 3, &payload);
        assert_eq!(Image::open(&image, MAGIC, 3).unwrap(), payload.as_slice());
    }

    #[test]
    fn image_rejects_wrong_magic_and_version() {
        let image = Image::seal(MAGIC, 1, b"x");
        assert!(matches!(
            Image::open(&image, MAGIC + 1, 1),
            Err(SnapError::BadMagic { .. })
        ));
        assert!(matches!(
            Image::open(&image, MAGIC, 2),
            Err(SnapError::BadVersion { .. })
        ));
    }

    #[test]
    fn version_mismatch_names_the_refusing_decoder() {
        let image = Image::seal(MAGIC, 2, b"x");
        let err = Image::open_as(&image, MAGIC, 3, "unit-test image (here.rs)").unwrap_err();
        match &err {
            SnapError::BadVersion {
                what,
                found,
                expected,
            } => {
                assert_eq!(*what, "unit-test image (here.rs)");
                assert_eq!((*found, *expected), (2, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("unit-test image (here.rs)"), "{msg}");
        assert!(msg.contains("v2") && msg.contains("v3"), "{msg}");
    }

    #[test]
    fn image_rejects_corruption_and_truncation() {
        let mut image = Image::seal(MAGIC, 1, b"important state");
        let last = image.len() - 1;
        image[last] ^= 0x40;
        assert!(matches!(
            Image::open(&image, MAGIC, 1),
            Err(SnapError::ChecksumMismatch { .. })
        ));
        image[last] ^= 0x40; // undo
        image.truncate(image.len() - 3);
        assert!(matches!(
            Image::open(&image, MAGIC, 1),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn image_rejects_trailing_garbage() {
        let mut image = Image::seal(MAGIC, 1, b"state");
        image.push(0xFF);
        assert!(matches!(
            Image::open(&image, MAGIC, 1),
            Err(SnapError::TrailingBytes(1))
        ));
    }
}
