//! Error type for snapshot encoding and decoding.

use std::fmt;

/// Failure while decoding (or validating) a snapshot image.
///
/// Encoding is infallible by construction — [`crate::Writer`] only appends
/// to a growable buffer — so every variant here describes a malformed,
/// truncated, or incompatible *input* image.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// The reader ran past the end of the buffer.
    Truncated {
        /// Bytes requested by the failing read.
        needed: usize,
        /// Bytes remaining in the buffer.
        available: usize,
    },
    /// The image does not start with the expected magic number.
    BadMagic {
        /// Magic found in the image.
        found: u32,
        /// Magic the decoder expected.
        expected: u32,
    },
    /// The image was written by an incompatible format version.
    BadVersion {
        /// What kind of image was being opened, ideally with its source
        /// location — e.g. `"platform full image (crates/platform/src/
        /// snapshot.rs)"` — so a stale image names exactly which decoder
        /// refused it. [`crate::Image::open`] fills in a generic `"image"`.
        what: &'static str,
        /// Version found in the image.
        found: u16,
        /// Version the decoder supports.
        expected: u16,
    },
    /// The payload checksum does not match the header checksum.
    ChecksumMismatch {
        /// Checksum recorded in the image header.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// A tag byte (enum discriminant, type id) had no known meaning.
    BadTag {
        /// Human-readable name of the field being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A decoded value was structurally invalid (e.g. out-of-range length).
    Malformed(String),
    /// The component cannot be checkpointed (e.g. a custom peripheral
    /// that does not implement the snapshot hooks).
    Unsupported(String),
    /// Decoding finished but bytes were left over.
    TrailingBytes(usize),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, available } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, {available} available"
                )
            }
            SnapError::BadMagic { found, expected } => {
                write!(
                    f,
                    "bad snapshot magic {found:#010x} (expected {expected:#010x})"
                )
            }
            SnapError::BadVersion {
                what,
                found,
                expected,
            } => {
                write!(
                    f,
                    "{what}: written as format v{found}, this build reads only v{expected} — \
                     old images are rejected, never reinterpreted; re-capture with the \
                     current tools"
                )
            }
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapError::BadTag { what, tag } => write!(f, "bad tag {tag} while decoding {what}"),
            SnapError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapError::Unsupported(msg) => write!(f, "cannot checkpoint: {msg}"),
            SnapError::TrailingBytes(n) => {
                write!(f, "snapshot decoded with {n} trailing bytes left over")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Convenience alias for snapshot results.
pub type SnapResult<T> = std::result::Result<T, SnapError>;
