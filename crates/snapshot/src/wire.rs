//! Little-endian fixed-width wire format: [`Writer`] appends, [`Reader`]
//! consumes with bounds checks.
//!
//! The format is deliberately boring — no varints, no compression, no
//! alignment — so that the byte stream is a pure deterministic function of
//! the encoded values and the decoder is trivially auditable. Everything
//! multi-byte is little-endian; lengths are `u64` prefixes.

use crate::error::{SnapError, SnapResult};

/// Append-only byte sink for snapshot encoding.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` little-endian (two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a UTF-8 string as `u64` length + bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Bounds-checked cursor over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Byte offset of the cursor from the start of the buffer. Paired with
    /// [`skip`](Reader::skip), this lets a decoder record the extent of a
    /// block on a first pass and jump over it on later passes (the delta
    /// checkpoint decoder skips the RAM block of a base image this way).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Advances the cursor `n` bytes without decoding them.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] if fewer than `n` bytes remain.
    pub fn skip(&mut self, n: usize) -> SnapResult<()> {
        self.take(n).map(|_| ())
    }

    /// Error unless the reader consumed the whole buffer.
    pub fn finish(&self) -> SnapResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0 or 1 is malformed.
    pub fn get_bool(&mut self) -> SnapResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::BadTag {
                what: "bool",
                tag: u64::from(b),
            }),
        }
    }

    /// Read a `u16` little-endian.
    pub fn get_u16(&mut self) -> SnapResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a `u32` little-endian.
    pub fn get_u32(&mut self) -> SnapResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64` little-endian.
    pub fn get_u64(&mut self) -> SnapResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `i64` little-endian (two's complement).
    pub fn get_i64(&mut self) -> SnapResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a `u64` and narrow it to `usize`.
    pub fn get_usize(&mut self) -> SnapResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| SnapError::Malformed(format!("usize value {v} out of range")))
    }

    /// Read a length prefix, sanity-capped against the remaining bytes so a
    /// corrupt length cannot trigger an enormous allocation. `min_elem_size`
    /// is the smallest possible encoding of one element.
    pub fn get_len(&mut self, min_elem_size: usize) -> SnapResult<usize> {
        let n = self.get_usize()?;
        let cap = self.remaining() / min_elem_size.max(1);
        if n > cap {
            return Err(SnapError::Malformed(format!(
                "length {n} exceeds remaining capacity {cap}"
            )));
        }
        Ok(n)
    }

    /// Read exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        self.take(n)
    }

    /// Read a `u64`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> SnapResult<String> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| SnapError::Malformed(format!("invalid UTF-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_i64(-42);
        w.put_str("car-radio");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_str().unwrap(), "car-radio");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_read_is_detected() {
        let mut w = Writer::new();
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_u64(),
            Err(SnapError::Truncated {
                needed: 8,
                available: 4
            })
        ));
    }

    #[test]
    fn bogus_length_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_len(1).is_err());
    }

    #[test]
    fn bad_bool_is_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(
            r.get_bool(),
            Err(SnapError::BadTag {
                what: "bool",
                tag: 2
            })
        ));
    }

    #[test]
    fn position_and_skip_track_the_cursor() {
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u64(2);
        w.put_u8(3);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.position(), 0);
        r.get_u32().unwrap();
        let mark = r.position();
        assert_eq!(mark, 4);
        r.skip(8).unwrap();
        assert_eq!(r.position(), mark + 8);
        assert_eq!(r.get_u8().unwrap(), 3);
        assert!(matches!(r.skip(1), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let bytes = [0u8; 3];
        let r = Reader::new(&bytes);
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes(3)));
    }
}
