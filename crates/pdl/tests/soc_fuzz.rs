//! Seeded fuzz properties for the `.soc` front end.
//!
//! Mirrors the RSP framing fuzz test (`crates/gdbrsp/tests/packet_fuzz.rs`)
//! and the snapshot layer's corrupt-token test: hostile input must surface
//! as source-located errors, never as panics — across truncation, byte
//! mutation, token soup, and targeted semantic attacks (unknown keywords,
//! duplicate and dangling references, out-of-range attributes).

use mpsoc_obs::rng::XorShift64Star;
use mpsoc_pdl::{generate, parse};

/// A healthy description exercising every construct of the grammar.
const WELL_FORMED: &str = "platform fuzz_target {
  cluster host {
    core apu0 { class = apu; freq_mhz = 600; }
  }
  core dsp0 { class = dsp; freq_mhz = 200; cluster = host; }
  core acc0 { class = accel; freq_mhz = 100; area_mmm2 = 500; power_uw = 9000; }
  memory { shared_words = 4096; local_words = 8192; }
  cache { sets = 32; assoc = 2; line_words = 8; hit_cycles = 1; }
  interconnect mesh { width = 2; height = 2; hop_ns = 5; link_ns = 2; }
  timer tick0;
  mailbox fifo0 { capacity = 16; }
  semaphore lock0 { count = 1; }
  dma dma0;
  budget { max_area_mm2 = 100; max_power_mw = 9000; }
}";

/// Parse + budget-check + build: the whole front end, errors tolerated,
/// panics not.
fn full_pipeline(src: &str) {
    if let Ok(desc) = parse(src) {
        let _ = desc.check_budget();
        let _ = desc.build();
        let _ = desc.metrics();
        let _ = desc.arch_model();
    }
}

#[test]
fn well_formed_source_compiles() {
    let desc = parse(WELL_FORMED).expect("well-formed source parses");
    desc.check_budget().expect("fits its own budget");
    let p = desc.build().expect("builds");
    assert_eq!(p.num_cores(), 3);
}

#[test]
fn every_truncation_errors_cleanly() {
    // Truncation at every char boundary must produce a located error (or,
    // for a comment-only prefix, some error) — never a panic.
    let chars: Vec<char> = WELL_FORMED.chars().collect();
    for len in 0..chars.len() {
        let prefix: String = chars[..len].iter().collect();
        let e = parse(&prefix).expect_err("every strict prefix is incomplete");
        assert!(
            e.line >= 1 && e.col >= 1,
            "located error for len {len}: {e}"
        );
    }
}

#[test]
fn random_byte_mutations_never_panic() {
    let mut rng = XorShift64Star::new(0x50c_f022);
    for _ in 0..2000 {
        let mut chars: Vec<char> = WELL_FORMED.chars().collect();
        for _ in 0..rng.usize_in(1, 8) {
            let idx = rng.usize_in(0, chars.len() - 1);
            chars[idx] = match rng.usize_in(0, 5) {
                0 => '{',
                1 => '}',
                2 => ';',
                3 => '=',
                4 => char::from(rng.u64_in(0x20, 0x7e) as u8),
                _ => '0',
            };
        }
        let mutated: String = chars.iter().collect();
        full_pipeline(&mutated);
    }
}

#[test]
fn random_token_soup_never_panics() {
    let words = [
        "platform",
        "cluster",
        "core",
        "memory",
        "cache",
        "interconnect",
        "budget",
        "timer",
        "mailbox",
        "semaphore",
        "dma",
        "bus",
        "mesh",
        "none",
        "class",
        "freq_mhz",
        "apu",
        "x",
        "{",
        "}",
        ";",
        "=",
        "0",
        "7",
        "4096",
        "0x40",
        "99999999999999999999",
    ];
    let mut rng = XorShift64Star::new(0x50c_50fa);
    for _ in 0..2000 {
        let n = rng.usize_in(0, 40);
        let soup: Vec<&str> = (0..n)
            .map(|_| words[rng.usize_in(0, words.len() - 1)])
            .collect();
        full_pipeline(&soup.join(" "));
    }
}

#[test]
fn targeted_semantic_attacks_are_located() {
    let cases: &[(&str, &str)] = &[
        (
            "platform p { widget w; }",
            "unknown declaration keyword",
        ),
        (
            "platform p { core a { class = gpu; freq_mhz = 1; } }",
            "unknown core class",
        ),
        (
            "platform p { core a { class = rpu; freq_mhz = 1; } core a { class = rpu; freq_mhz = 1; } }",
            "duplicate core",
        ),
        (
            "platform p { core a { class = rpu; freq_mhz = 1; cluster = ghost; } }",
            "unknown cluster",
        ),
        (
            "platform p { core a { class = rpu; freq_mhz = 20000; } }",
            "out of range",
        ),
        (
            "platform p { core a { class = rpu; freq_mhz = 1; } mailbox m { capacity = 0; } }",
            "out of range",
        ),
        (
            "platform p { core a { class = rpu; freq_mhz = 1; } cache { sets = 48; } }",
            "power of two",
        ),
        (
            "platform p { core a { class = rpu; freq_mhz = 1; } interconnect mesh { hop_ns = 1; } }",
            "requires `width` and `height`",
        ),
        (
            "platform p { core a { class = apu; freq_mhz = 1000; } budget { max_power_mw = 1; } }",
            "exceeds budget",
        ),
    ];
    for (src, needle) in cases {
        let err = parse(src)
            .and_then(|d| d.check_budget())
            .expect_err("attack must be rejected");
        assert!(
            err.msg.contains(needle),
            "{src:?}: expected {needle:?} in {err}"
        );
        assert!(err.line >= 1 && err.col >= 1);
    }
}

#[test]
fn generated_corpus_survives_mutation() {
    // The generator's output is a second, structurally different corpus:
    // mutate it too, so fuzzing does not overfit to one hand-written file.
    let mut rng = XorShift64Star::new(0x50c_9e4e);
    for seed in 0..64u64 {
        let src = generate(seed);
        let mut chars: Vec<char> = src.chars().collect();
        let idx = rng.usize_in(0, chars.len() - 1);
        chars[idx] = char::from(rng.u64_in(0x21, 0x7e) as u8);
        let mutated: String = chars.iter().collect();
        full_pipeline(&mutated);
    }
}
