//! Joint mapping*topology design-space exploration.
//!
//! The paper's road-works complaint is that the platform is a *fixed*
//! artifact the mapping flow must target; here the platform itself becomes
//! a sweepable axis. Each trial of the sweep:
//!
//! 1. derives a topology seed and a mapping seed from the trial index,
//! 2. generates a `.soc` description ([`crate::generate::generate`]) and
//!    parses it back (every trial round-trips the language front end),
//! 3. derives the coarse MAPS architecture model and anneals a mapping of
//!    the fixed multimedia-style workload graph onto it,
//! 4. scores the trial as (makespan, area, power) using the deterministic
//!    integer cost model.
//!
//! Trials run on [`mpsoc_explore::Sweep`] — seed-split fan-out, fixed-order
//! merge — so the resulting Pareto front is bit-identical at any thread
//! count; `tests/explore_equivalence.rs` pins 1/2/4/8.

use crate::compile::SocMetrics;
use crate::error::{Error, Result};
use crate::generate::generate;
use crate::parser::parse;
use mpsoc_explore::{split_seeds, Sweep};
use mpsoc_maps::{PeClass, Task, TaskEdge, TaskGraph};
use std::fmt;
use std::fmt::Write as _;

/// Configuration of a joint sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JointConfig {
    /// Master seed; topology and mapping seeds derive from it.
    pub master_seed: u64,
    /// Number of distinct topologies to generate.
    pub topologies: usize,
    /// Mappings annealed per topology.
    pub mappings_per_topology: usize,
    /// Annealing iterations per mapping trial.
    pub anneal_iters: u64,
    /// Worker threads for the sweep (results are thread-invariant).
    pub threads: usize,
}

impl JointConfig {
    /// The CI smoke profile: seconds-scale, still a real joint sweep.
    pub fn smoke() -> Self {
        JointConfig {
            master_seed: 0xD5E9,
            topologies: 24,
            mappings_per_topology: 2,
            anneal_iters: 150,
            threads: 1,
        }
    }

    /// The full experiment profile used by E13.
    pub fn full() -> Self {
        JointConfig {
            master_seed: 0xD5E9,
            topologies: 96,
            mappings_per_topology: 4,
            anneal_iters: 600,
            threads: 1,
        }
    }
}

/// One scored design point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JointTrial {
    /// Seed the topology was generated from.
    pub topology_seed: u64,
    /// Seed the mapping was annealed from.
    pub mapping_seed: u64,
    /// Generated platform name.
    pub platform: String,
    /// Core count of the platform.
    pub cores: usize,
    /// Annealed makespan of the workload graph, in reference cycles.
    pub makespan: u64,
    /// Platform area in milli-mm^2.
    pub area_mmm2: u64,
    /// Platform power in uW.
    pub power_uw: u64,
}

impl JointTrial {
    /// `true` if `other` dominates this point (no worse on every
    /// objective, strictly better on at least one; all minimized).
    pub fn dominated_by(&self, other: &JointTrial) -> bool {
        let no_worse = other.makespan <= self.makespan
            && other.area_mmm2 <= self.area_mmm2
            && other.power_uw <= self.power_uw;
        let better = other.makespan < self.makespan
            || other.area_mmm2 < self.area_mmm2
            || other.power_uw < self.power_uw;
        no_worse && better
    }
}

/// Result of a joint sweep: all trials plus the Pareto front.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JointReport {
    /// Master seed the sweep derived everything from.
    pub master_seed: u64,
    /// Trials evaluated (`topologies * mappings_per_topology`).
    pub trials: usize,
    /// Topology count.
    pub topologies: usize,
    /// Mappings per topology.
    pub mappings_per_topology: usize,
    /// The non-dominated set over (makespan, area, power), in trial order.
    pub front: Vec<JointTrial>,
}

impl JointReport {
    /// Serializes the report (the CI artifact) as JSON. Thread count is an
    /// execution detail and is deliberately excluded: the JSON is byte-
    /// identical at any thread count.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"experiment\": \"E13 joint mapping x topology DSE\",");
        let _ = writeln!(s, "  \"master_seed\": {},", self.master_seed);
        let _ = writeln!(s, "  \"trials\": {},", self.trials);
        let _ = writeln!(s, "  \"topologies\": {},", self.topologies);
        let _ = writeln!(
            s,
            "  \"mappings_per_topology\": {},",
            self.mappings_per_topology
        );
        let _ = writeln!(s, "  \"pareto_front\": [");
        for (i, t) in self.front.iter().enumerate() {
            let comma = if i + 1 == self.front.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"platform\": \"{}\", \"topology_seed\": {}, \"mapping_seed\": {}, \
                 \"cores\": {}, \"makespan\": {}, \"area_mmm2\": {}, \"power_uw\": {}}}{comma}",
                t.platform,
                t.topology_seed,
                t.mapping_seed,
                t.cores,
                t.makespan,
                t.area_mmm2,
                t.power_uw
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl fmt::Display for JointReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "joint DSE: {} trials ({} topologies x {} mappings), Pareto front {}",
            self.trials,
            self.topologies,
            self.mappings_per_topology,
            self.front.len()
        )?;
        writeln!(
            f,
            "  {:<22} {:>5} {:>10} {:>10} {:>10}",
            "platform", "cores", "makespan", "area mm2", "power mW"
        )?;
        for t in &self.front {
            writeln!(
                f,
                "  {:<22} {:>5} {:>10} {:>10.3} {:>10.3}",
                t.platform,
                t.cores,
                t.makespan,
                t.area_mmm2 as f64 / 1000.0,
                t.power_uw as f64 / 1000.0
            )?;
        }
        Ok(())
    }
}

/// The fixed workload the joint sweep maps: a multimedia-style DAG
/// (capture, parallel filter bank, DSP transform pair, accelerator
/// entropy/packing stages, control merge) with class preferences — so core
/// mix genuinely matters to the score.
pub fn workload() -> TaskGraph {
    let t = |name: &str, cost: u64, pref: Option<PeClass>| Task {
        name: name.into(),
        cost,
        pref,
        stmts: Vec::new(),
    };
    let e = |from: usize, to: usize, volume: u64| TaskEdge { from, to, volume };
    TaskGraph {
        tasks: vec![
            t("capture", 400, Some(PeClass::Risc)),         // 0
            t("filter0", 1200, Some(PeClass::Dsp)),         // 1
            t("filter1", 1200, Some(PeClass::Dsp)),         // 2
            t("filter2", 1200, Some(PeClass::Dsp)),         // 3
            t("filter3", 1200, Some(PeClass::Dsp)),         // 4
            t("xform0", 2000, Some(PeClass::Dsp)),          // 5
            t("xform1", 2000, Some(PeClass::Dsp)),          // 6
            t("quant", 900, None),                          // 7
            t("entropy", 1600, Some(PeClass::Accelerator)), // 8
            t("pack", 1100, Some(PeClass::Accelerator)),    // 9
            t("control", 500, Some(PeClass::Risc)),         // 10
            t("emit", 300, Some(PeClass::Risc)),            // 11
        ],
        edges: vec![
            e(0, 1, 64),
            e(0, 2, 64),
            e(0, 3, 64),
            e(0, 4, 64),
            e(1, 5, 48),
            e(2, 5, 48),
            e(3, 6, 48),
            e(4, 6, 48),
            e(5, 7, 32),
            e(6, 7, 32),
            e(7, 8, 32),
            e(7, 9, 32),
            e(0, 10, 8),
            e(8, 11, 16),
            e(9, 11, 16),
            e(10, 11, 8),
        ],
    }
}

/// Computes the Pareto front of `trials` over (makespan, area, power), all
/// minimized. The front keeps trial order; exactly-equal score triples keep
/// only their first occurrence, so the result is deterministic.
pub fn pareto_front(trials: &[JointTrial]) -> Vec<JointTrial> {
    let mut front = Vec::new();
    'outer: for (i, t) in trials.iter().enumerate() {
        for (j, o) in trials.iter().enumerate() {
            if i == j {
                continue;
            }
            if t.dominated_by(o) {
                continue 'outer;
            }
            // Tie on all three objectives: keep the earliest trial only.
            if j < i
                && o.makespan == t.makespan
                && o.area_mmm2 == t.area_mmm2
                && o.power_uw == t.power_uw
            {
                continue 'outer;
            }
        }
        front.push(t.clone());
    }
    front
}

/// Runs the joint mapping*topology sweep.
///
/// # Errors
///
/// An [`Error`] if any generated topology fails to validate or any mapping
/// fails to evaluate — both indicate a generator/workload bug, and the
/// sweep reports rather than panics.
pub fn joint_sweep(cfg: &JointConfig) -> Result<JointReport> {
    let topo_seeds = split_seeds(cfg.master_seed, cfg.topologies);
    let map_seeds = split_seeds(
        cfg.master_seed ^ 0x9E37_79B9_7F4A_7C15,
        cfg.mappings_per_topology,
    );
    let graph = workload();
    let n = cfg.topologies * cfg.mappings_per_topology;
    let results: Vec<Result<JointTrial>> = Sweep::new(cfg.threads).run(n, |i| {
        let topo_seed = topo_seeds[i / cfg.mappings_per_topology];
        let mapping_seed = map_seeds[i % cfg.mappings_per_topology];
        let src = generate(topo_seed);
        let desc = parse(&src)?;
        desc.check_budget()?;
        let arch = desc.arch_model();
        let mapping = mpsoc_maps::anneal(&graph, &arch, mapping_seed, cfg.anneal_iters)
            .map_err(|e| Error::new(0, 0, format!("mapping failed: {e}")))?;
        let m: SocMetrics = desc.metrics();
        Ok(JointTrial {
            topology_seed: topo_seed,
            mapping_seed,
            platform: desc.name.clone(),
            cores: m.cores,
            makespan: mapping.makespan,
            area_mmm2: m.area_mmm2,
            power_uw: m.power_uw,
        })
    });
    let trials: Vec<JointTrial> = results.into_iter().collect::<Result<_>>()?;
    let front = pareto_front(&trials);
    Ok(JointReport {
        master_seed: cfg.master_seed,
        trials: n,
        topologies: cfg.topologies,
        mappings_per_topology: cfg.mappings_per_topology,
        front,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_a_front() {
        let report = joint_sweep(&JointConfig::smoke()).expect("sweep runs");
        assert_eq!(report.trials, 48);
        assert!(!report.front.is_empty());
        assert!(report.front.len() <= report.trials);
        let json = report.to_json();
        assert!(json.contains("\"pareto_front\""));
    }

    #[test]
    fn front_is_nondominated_and_deduped() {
        let report = joint_sweep(&JointConfig::smoke()).expect("sweep runs");
        for (i, a) in report.front.iter().enumerate() {
            for (j, b) in report.front.iter().enumerate() {
                if i != j {
                    assert!(!a.dominated_by(b), "front point {i} dominated by {j}");
                    assert!(
                        (a.makespan, a.area_mmm2, a.power_uw)
                            != (b.makespan, b.area_mmm2, b.power_uw),
                        "front contains duplicate score triple"
                    );
                }
            }
        }
    }

    #[test]
    fn workload_is_well_formed() {
        let g = workload();
        assert_eq!(g.tasks.len(), 12);
        for e in &g.edges {
            assert!(e.from < e.to, "tasks must be in topological order");
            assert!(e.to < g.tasks.len());
        }
    }
}
