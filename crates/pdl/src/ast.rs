//! The parsed form of a `.soc` platform description.
//!
//! Every declaration keeps the 1-based source position of its introducing
//! token so validation and platform-builder failures can be mapped back to
//! the offending text (see [`crate::error::Error`]).

use mpsoc_platform::platform::{CacheConfig, InterconnectConfig};
use mpsoc_platform::Time;

/// A 1-based source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// Line.
    pub line: usize,
    /// Column.
    pub col: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }
}

/// Core classes understood by the language.
///
/// Classes do not change how the cycle-approximate platform executes (all
/// cores run the same ISA); they drive the area/power cost model and the
/// coarse MAPS architecture model used by the joint DSE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreClass {
    /// Application processor (general-purpose, out-of-order class).
    Apu,
    /// Real-time processor (lean in-order control core).
    Rpu,
    /// Digital signal processor.
    Dsp,
    /// Fixed-function / loosely programmable accelerator.
    Accel,
}

impl CoreClass {
    /// The textual form used in `.soc` sources.
    pub fn as_str(self) -> &'static str {
        match self {
            CoreClass::Apu => "apu",
            CoreClass::Rpu => "rpu",
            CoreClass::Dsp => "dsp",
            CoreClass::Accel => "accel",
        }
    }

    /// Parses a class value; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "apu" => Some(CoreClass::Apu),
            "rpu" => Some(CoreClass::Rpu),
            "dsp" => Some(CoreClass::Dsp),
            "accel" => Some(CoreClass::Accel),
            _ => None,
        }
    }
}

/// One `core` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct SocCore {
    /// Core name (unique within the platform).
    pub name: String,
    /// Core class.
    pub class: CoreClass,
    /// Clock frequency in kHz (the builder's native unit).
    pub freq_khz: u64,
    /// Owning cluster, if any (nested declaration or `cluster = NAME`).
    pub cluster: Option<String>,
    /// Optional per-core area override in milli-mm^2 (`area_mmm2`).
    pub area_mmm2: Option<u64>,
    /// Optional per-core power override in micro-watts (`power_uw`).
    pub power_uw: Option<u64>,
    /// Where the core was declared.
    pub span: Span,
}

/// Peripheral kinds understood by the language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SocPeriphKind {
    /// A programmable periodic timer.
    Timer,
    /// A blocking FIFO mailbox with the given capacity.
    Mailbox {
        /// FIFO capacity in messages.
        capacity: usize,
    },
    /// A counting semaphore with the given initial count.
    Semaphore {
        /// Initial count.
        count: i64,
    },
    /// A DMA engine.
    Dma,
}

/// One peripheral declaration, in platform order (order determines the
/// peripheral's memory-mapped page, so it is semantically significant).
#[derive(Clone, Debug, PartialEq)]
pub struct SocPeriph {
    /// Peripheral name (unique across all peripheral kinds).
    pub name: String,
    /// Kind and kind-specific attributes.
    pub kind: SocPeriphKind,
    /// Where the peripheral was declared.
    pub span: Span,
}

/// The `interconnect` declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocInterconnect {
    /// Shared bus: per-access latency and occupancy in nanoseconds.
    Bus {
        /// End-to-end access latency (ns).
        latency_ns: u64,
        /// Bus occupancy per access (ns).
        occupancy_ns: u64,
    },
    /// 2-D mesh NoC: `width * height` routers, per-hop latency and link
    /// occupancy in nanoseconds. Needs `width * height >= cores + 1`.
    Mesh {
        /// Mesh width in routers.
        width: usize,
        /// Mesh height in routers.
        height: usize,
        /// Per-hop forwarding latency (ns).
        hop_ns: u64,
        /// Per-flit link occupancy (ns).
        link_ns: u64,
    },
}

impl SocInterconnect {
    /// Converts to the platform builder's configuration type.
    pub fn to_config(self) -> InterconnectConfig {
        match self {
            SocInterconnect::Bus {
                latency_ns,
                occupancy_ns,
            } => InterconnectConfig::Bus {
                latency: Time::from_ns(latency_ns),
                occupancy: Time::from_ns(occupancy_ns),
            },
            SocInterconnect::Mesh {
                width,
                height,
                hop_ns,
                link_ns,
            } => InterconnectConfig::Mesh {
                w: width,
                h: height,
                hop_latency: Time::from_ns(hop_ns),
                link_occupancy: Time::from_ns(link_ns),
            },
        }
    }
}

/// The optional `budget` declaration (lumos-style system constraints).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SocBudget {
    /// Maximum platform area in mm^2.
    pub max_area_mm2: Option<u64>,
    /// Maximum platform power in mW.
    pub max_power_mw: Option<u64>,
}

/// A fully parsed and validated platform description.
#[derive(Clone, Debug, PartialEq)]
pub struct SocDesc {
    /// Platform name.
    pub name: String,
    /// Cores, in declaration order (core ids follow this order).
    pub cores: Vec<SocCore>,
    /// Declared cluster names, in declaration order.
    pub clusters: Vec<String>,
    /// Shared memory size in words.
    pub shared_words: usize,
    /// Per-core local store size in words.
    pub local_words: usize,
    /// Per-core L1 cache; `None` means `cache none;`.
    pub cache: Option<CacheConfig>,
    /// Interconnect topology.
    pub interconnect: SocInterconnect,
    /// Peripherals, in declaration (= page) order.
    pub peripherals: Vec<SocPeriph>,
    /// Optional area/power budget.
    pub budget: SocBudget,
    /// Span of the `memory` section (or of `platform` when defaulted).
    pub memory_span: Span,
    /// Span of the `interconnect` section (or of `platform` when defaulted).
    pub interconnect_span: Span,
    /// Span of the `cache` section (or of `platform` when defaulted).
    pub cache_span: Span,
    /// Span of the `budget` section (or of `platform` when absent).
    pub budget_span: Span,
}
