//! # mpsoc-pdl — declarative platform description language
//!
//! The paper's premise is that MPSoC platforms are handed to the
//! programmer as fixed artifacts ("road works ahead" — the platform is the
//! road). This crate makes the platform itself a described, generated, and
//! *swept* object:
//!
//! * **Language** (`.soc` files): a hand-rolled declarative format — same
//!   lexer/parser idiom as the mini-C front end, zero external
//!   dependencies — describing cores (class/frequency/cluster), memories,
//!   caches, bus or mesh interconnect, and peripherals, with optional
//!   area/power budgets. See [`parser`] for the grammar.
//! * **Compiler**: [`compile::compile`] turns a source into a live
//!   [`mpsoc_platform::Platform`] via `PlatformBuilder`, with every failure
//!   (unknown references, duplicate names, out-of-range attributes, budget
//!   violations, builder rejections) reported as a source-located
//!   [`error::Error`] — the front end never panics on malformed input.
//! * **Generator**: [`generate::generate`] emits distinct, always-valid
//!   `.soc` sources from a seed (heterogeneous APU/RPU/DSP clusters,
//!   accelerators, budget-constrained variants).
//! * **Joint DSE**: [`dse::joint_sweep`] sweeps (topology seed, mapping)
//!   pairs on the deterministic explore engine and emits a Pareto front
//!   over (makespan, area, power) that is bit-identical at any thread
//!   count.
//!
//! ```
//! let src = "platform demo {
//!     core host { class = apu; freq_mhz = 600; }
//!     core dsp0 { class = dsp; freq_mhz = 200; }
//!     memory { shared_words = 4096; }
//!     timer tick;
//! }";
//! let platform = mpsoc_pdl::compile(src).unwrap();
//! assert_eq!(platform.num_cores(), 2);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod dse;
pub mod error;
pub mod generate;
pub mod lexer;
pub mod parser;
pub mod token;

pub use crate::ast::{CoreClass, SocCore, SocDesc, SocInterconnect, SocPeriph, SocPeriphKind};
pub use crate::compile::{compile, SocMetrics};
pub use crate::dse::{joint_sweep, pareto_front, JointConfig, JointReport, JointTrial};
pub use crate::error::{Error, Result};
pub use crate::generate::{build_generated, generate, generate_budgeted};
pub use crate::parser::parse;
