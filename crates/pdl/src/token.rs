//! Lexical tokens of the `.soc` platform description language.

use std::fmt;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// The kinds of `.soc` tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal (decimal or `0x` hexadecimal).
    Int(i64),
    /// An identifier (names, attribute keys, class values).
    Ident(String),
    /// `platform`
    KwPlatform,
    /// `cluster`
    KwCluster,
    /// `core`
    KwCore,
    /// `memory`
    KwMemory,
    /// `cache`
    KwCache,
    /// `interconnect`
    KwInterconnect,
    /// `budget`
    KwBudget,
    /// `timer`
    KwTimer,
    /// `mailbox`
    KwMailbox,
    /// `semaphore`
    KwSemaphore,
    /// `dma`
    KwDma,
    /// `bus`
    KwBus,
    /// `mesh`
    KwMesh,
    /// `none`
    KwNone,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Assign,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::KwPlatform => write!(f, "`platform`"),
            TokenKind::KwCluster => write!(f, "`cluster`"),
            TokenKind::KwCore => write!(f, "`core`"),
            TokenKind::KwMemory => write!(f, "`memory`"),
            TokenKind::KwCache => write!(f, "`cache`"),
            TokenKind::KwInterconnect => write!(f, "`interconnect`"),
            TokenKind::KwBudget => write!(f, "`budget`"),
            TokenKind::KwTimer => write!(f, "`timer`"),
            TokenKind::KwMailbox => write!(f, "`mailbox`"),
            TokenKind::KwSemaphore => write!(f, "`semaphore`"),
            TokenKind::KwDma => write!(f, "`dma`"),
            TokenKind::KwBus => write!(f, "`bus`"),
            TokenKind::KwMesh => write!(f, "`mesh`"),
            TokenKind::KwNone => write!(f, "`none`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
