//! Compiling a [`SocDesc`] into a live [`Platform`], plus the deterministic
//! area/power cost model and the coarse MAPS architecture model.
//!
//! # Cost model
//!
//! Area and power are computed with fixed per-class coefficients (loosely
//! lumos-style: big cores cost area, accelerators cost little area but are
//! only fast on matching work):
//!
//! | component | area (milli-mm^2) | power (uW) |
//! |---|---|---|
//! | apu core | `2000 + 1000 * MHz / 1000` | `900 * MHz` |
//! | rpu core | `800 + 400 * MHz / 1000` | `350 * MHz` |
//! | dsp core | `1500 + 700 * MHz / 1000` | `700 * MHz` |
//! | accel core | `2800 + 600 * MHz / 1000` | `500 * MHz` |
//! | shared RAM | `40 / 1Ki words` | `20000 / 1Ki words` |
//! | local RAM (per core) | `60 / 1Ki words` | `30000 / 1Ki words` |
//! | L1 cache (per core) | `90 / 1Ki words of lines` | `45000 / 1Ki words` |
//! | timer / semaphore | `10` | `200` |
//! | mailbox | `20` | `300` |
//! | DMA engine | `120` | `1500` |
//! | bus | `300` | `1000` |
//! | mesh router | `180` each | `800` each |
//!
//! All arithmetic is exact integer math in milli-mm^2 and uW, so metrics —
//! and therefore budget validation and Pareto fronts — are bit-identical
//! across hosts and thread counts.

use crate::ast::{CoreClass, SocDesc, SocInterconnect, SocPeriphKind};
use crate::error::{Error, Result};
use crate::parser::parse;
use mpsoc_platform::platform::{Platform, PlatformBuilder};
use mpsoc_platform::Frequency;

/// Deterministic platform metrics in integer milli-units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SocMetrics {
    /// Total area in milli-mm^2 (1/1000 mm^2).
    pub area_mmm2: u64,
    /// Total power in uW (1/1000 mW).
    pub power_uw: u64,
    /// Number of cores.
    pub cores: usize,
    /// Number of peripherals.
    pub peripherals: usize,
}

impl SocMetrics {
    /// Area in mm^2 (for display only; comparisons use the integer form).
    pub fn area_mm2(&self) -> f64 {
        self.area_mmm2 as f64 / 1000.0
    }

    /// Power in mW (for display only; comparisons use the integer form).
    pub fn power_mw(&self) -> f64 {
        self.power_uw as f64 / 1000.0
    }
}

/// Per-class cost coefficients: (base area, area per GHz, power per MHz),
/// in milli-mm^2 and uW.
fn class_coeffs(class: CoreClass) -> (u64, u64, u64) {
    match class {
        CoreClass::Apu => (2000, 1000, 900),
        CoreClass::Rpu => (800, 400, 350),
        CoreClass::Dsp => (1500, 700, 700),
        CoreClass::Accel => (2800, 600, 500),
    }
}

/// Exposes the class coefficients to the budgeted generator (it ranks
/// cores by model cost when shedding them to fit a budget).
pub(crate) fn class_cost_probe(class: CoreClass) -> (u64, u64, u64) {
    class_coeffs(class)
}

impl SocDesc {
    /// Computes the deterministic area/power metrics of this description.
    pub fn metrics(&self) -> SocMetrics {
        let mut area = 0u64;
        let mut power = 0u64;
        for core in &self.cores {
            let mhz = core.freq_khz / 1000;
            let (base, per_ghz, pw_per_mhz) = class_coeffs(core.class);
            area += core.area_mmm2.unwrap_or(base + per_ghz * mhz / 1000);
            power += core.power_uw.unwrap_or(pw_per_mhz * mhz);
        }
        let n = self.cores.len() as u64;
        area += 40 * (self.shared_words as u64) / 1024;
        power += 20_000 * (self.shared_words as u64) / 1024;
        area += n * 60 * (self.local_words as u64) / 1024;
        power += n * 30_000 * (self.local_words as u64) / 1024;
        if let Some(c) = &self.cache {
            let words = c.sets as u64 * c.assoc as u64 * c.line_words as u64;
            area += n * 90 * words / 1024;
            power += n * 45_000 * words / 1024;
        }
        for p in &self.peripherals {
            let (a, w) = match p.kind {
                SocPeriphKind::Timer | SocPeriphKind::Semaphore { .. } => (10, 200),
                SocPeriphKind::Mailbox { .. } => (20, 300),
                SocPeriphKind::Dma => (120, 1500),
            };
            area += a;
            power += w;
        }
        match self.interconnect {
            SocInterconnect::Bus { .. } => {
                area += 300;
                power += 1000;
            }
            SocInterconnect::Mesh { width, height, .. } => {
                let routers = (width * height) as u64;
                area += 180 * routers;
                power += 800 * routers;
            }
        }
        SocMetrics {
            area_mmm2: area,
            power_uw: power,
            cores: self.cores.len(),
            peripherals: self.peripherals.len(),
        }
    }

    /// Validates the optional area/power budget against [`Self::metrics`].
    ///
    /// # Errors
    ///
    /// A source-located error at the `budget` section when a limit is
    /// exceeded.
    pub fn check_budget(&self) -> Result<()> {
        let m = self.metrics();
        if let Some(max) = self.budget.max_area_mm2 {
            if m.area_mmm2 > max * 1000 {
                return Err(Error::new(
                    self.budget_span.line,
                    self.budget_span.col,
                    format!(
                        "platform area {:.3} mm2 exceeds budget {max} mm2",
                        m.area_mm2()
                    ),
                ));
            }
        }
        if let Some(max) = self.budget.max_power_mw {
            if m.power_uw > max * 1000 {
                return Err(Error::new(
                    self.budget_span.line,
                    self.budget_span.col,
                    format!(
                        "platform power {:.3} mW exceeds budget {max} mW",
                        m.power_mw()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Builds the described virtual platform: cores in declaration order,
    /// then peripherals in declaration (= page) order.
    ///
    /// # Errors
    ///
    /// Platform-builder rejections are mapped back to the source span of
    /// the section that caused them (memory, cache, interconnect, or the
    /// platform header), so callers always get a located diagnostic.
    pub fn build(&self) -> Result<Platform> {
        let freqs = self
            .cores
            .iter()
            .map(|c| Frequency::khz(c.freq_khz))
            .collect();
        let built = PlatformBuilder::new()
            .cores_with_freqs(freqs)
            .shared_words(self.shared_words as u32)
            .local_words(self.local_words as u32)
            .cache(self.cache)
            .interconnect(self.interconnect.to_config())
            .build();
        let mut p = match built {
            Ok(p) => p,
            Err(e) => {
                // Attribute the failure to the most relevant section.
                let msg = e.to_string();
                let span = if msg.contains("mesh") {
                    self.interconnect_span
                } else if msg.contains("cache") {
                    self.cache_span
                } else if msg.contains("memory") || msg.contains("local store") {
                    self.memory_span
                } else {
                    self.interconnect_span
                };
                return Err(Error::new(span.line, span.col, msg));
            }
        };
        for periph in &self.peripherals {
            match periph.kind {
                SocPeriphKind::Timer => {
                    p.add_timer(&periph.name);
                }
                SocPeriphKind::Mailbox { capacity } => {
                    p.add_mailbox(&periph.name, capacity);
                }
                SocPeriphKind::Semaphore { count } => {
                    p.add_semaphore(&periph.name, count as u64);
                }
                SocPeriphKind::Dma => {
                    p.add_dma(&periph.name);
                }
            }
        }
        Ok(p)
    }

    /// Derives the coarse MAPS architecture model used by the joint
    /// mapping*topology DSE: one PE per core, class-mapped, speed relative
    /// to a 100 MHz reference RISC, communication costs from the
    /// interconnect.
    pub fn arch_model(&self) -> mpsoc_maps::ArchModel {
        let pes = self
            .cores
            .iter()
            .map(|c| mpsoc_maps::Pe {
                name: c.name.clone(),
                class: match c.class {
                    CoreClass::Apu | CoreClass::Rpu => mpsoc_maps::PeClass::Risc,
                    CoreClass::Dsp => mpsoc_maps::PeClass::Dsp,
                    CoreClass::Accel => mpsoc_maps::PeClass::Accelerator,
                },
                // RPUs are lean in-order cores: half the per-MHz throughput.
                speed: match c.class {
                    CoreClass::Rpu => c.freq_khz as f64 / 200_000.0,
                    _ => c.freq_khz as f64 / 100_000.0,
                },
            })
            .collect();
        let (remote, local) = match self.interconnect {
            SocInterconnect::Bus {
                latency_ns,
                occupancy_ns,
            } => (1 + (latency_ns + occupancy_ns) / 10, 1),
            SocInterconnect::Mesh {
                width,
                height,
                hop_ns,
                link_ns,
            } => {
                let diameter = (width + height) as u64;
                (1 + diameter * (hop_ns + link_ns) / 20, 1)
            }
        };
        mpsoc_maps::ArchModel::new(pes, remote, local).expect("non-empty validated core list")
    }
}

/// Parses, budget-checks, and builds a platform from `.soc` source in one
/// call.
///
/// # Errors
///
/// Any lexing/parsing/validation/builder failure, source-located.
pub fn compile(src: &str) -> Result<Platform> {
    let desc = parse(src)?;
    desc.check_budget()?;
    desc.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "platform p {
        core big { class = apu; freq_mhz = 600; }
        core little { class = rpu; freq_mhz = 100; }
        memory { shared_words = 2048; }
        timer tick;
        mailbox mb { capacity = 8; }
        dma dmac;
    }";

    #[test]
    fn builds_and_steps() {
        let p = compile(SMALL).unwrap();
        assert_eq!(p.num_cores(), 2);
        // No programs loaded: the platform is idle but steppable state.
        let _ = p.state_checksum();
    }

    #[test]
    fn metrics_are_deterministic_integers() {
        let d = parse(SMALL).unwrap();
        let m1 = d.metrics();
        let m2 = d.metrics();
        assert_eq!(m1, m2);
        assert!(m1.area_mmm2 > 0 && m1.power_uw > 0);
        assert_eq!(m1.cores, 2);
        assert_eq!(m1.peripherals, 3);
    }

    #[test]
    fn budget_violation_is_located() {
        let src = "platform p {
            core big { class = apu; freq_mhz = 1000; }
            budget { max_area_mm2 = 1; }
        }";
        let e = compile(src).unwrap_err();
        assert!(e.msg.contains("exceeds budget"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn mesh_too_small_maps_to_interconnect_span() {
        let src = "platform p {
            core a { class = rpu; freq_mhz = 100; }
            core b { class = rpu; freq_mhz = 100; }
            core c { class = rpu; freq_mhz = 100; }
            interconnect mesh { width = 2; height = 1; }
        }";
        let e = compile(src).unwrap_err();
        assert!(e.msg.contains("mesh"), "{e}");
        assert_eq!(e.line, 5, "error points at the interconnect section: {e}");
    }

    #[test]
    fn arch_model_maps_classes() {
        let d = parse(
            "platform p {
                core a { class = apu; freq_mhz = 200; }
                core d { class = dsp; freq_mhz = 100; }
                core x { class = accel; freq_mhz = 100; }
            }",
        )
        .unwrap();
        let arch = d.arch_model();
        assert_eq!(arch.len(), 3);
        assert_eq!(arch.pes()[0].class, mpsoc_maps::PeClass::Risc);
        assert_eq!(arch.pes()[1].class, mpsoc_maps::PeClass::Dsp);
        assert_eq!(arch.pes()[2].class, mpsoc_maps::PeClass::Accelerator);
        assert!((arch.pes()[0].speed - 2.0).abs() < 1e-12);
    }
}
