//! Recursive-descent parser and validator for `.soc` sources.
//!
//! Grammar (sections may appear in any order; `memory`, `cache`,
//! `interconnect`, and `budget` are optional and default to the
//! `PlatformBuilder` defaults):
//!
//! ```text
//! platform   := "platform" IDENT "{" item* "}"
//! item       := cluster | core | memory | cache | interconnect
//!             | budget | periph
//! cluster    := "cluster" IDENT "{" core* "}"
//! core       := "core" IDENT "{" attr* "}"
//!               // class = apu|rpu|dsp|accel; freq_mhz = N (or freq_khz);
//!               // cluster = NAME; area_mmm2 = N; power_uw = N
//! memory     := "memory" "{" attr* "}"      // shared_words, local_words
//! cache      := "cache" ("none" ";" | "{" attr* "}")
//!               // sets, assoc, line_words, hit_cycles
//! interconnect := "interconnect" ("bus" | "mesh") "{" attr* "}"
//!               // bus: latency_ns, occupancy_ns
//!               // mesh: width, height, hop_ns, link_ns
//! budget     := "budget" "{" attr* "}"      // max_area_mm2, max_power_mw
//! periph     := ("timer"|"mailbox"|"semaphore"|"dma") IDENT
//!               (";" | "{" attr* "}")       // mailbox: capacity; semaphore: count
//! attr       := IDENT "=" (INT | IDENT) ";"
//! ```
//!
//! Validation is part of parsing: duplicate names, unknown cluster
//! references, unknown keywords/attributes, and out-of-range values all
//! produce source-located [`Error`]s; the parser never panics.

use crate::ast::{
    CoreClass, SocBudget, SocCore, SocDesc, SocInterconnect, SocPeriph, SocPeriphKind, Span,
};
use crate::error::{Error, Result};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use mpsoc_platform::platform::CacheConfig;

/// Upper bound accepted for any size-like attribute (words, capacities),
/// keeping generated platforms within the simulator's practical range.
const MAX_WORDS: i64 = 1 << 22;

/// Parses and validates a `.soc` source into a [`SocDesc`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error with its source
/// position. Budget violations are checked against the cost model in
/// [`crate::compile()`] (they need the metrics), not here.
pub fn parse(src: &str) -> Result<SocDesc> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.platform()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Attribute value: integer or bare identifier.
enum Value {
    Int(i64),
    Ident(String),
}

/// One parsed `key = value;` attribute with spans for key and value.
struct Attr {
    key: String,
    key_span: Span,
    value: Value,
    value_span: Span,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token> {
        let t = self.bump();
        if t.kind == kind {
            Ok(t)
        } else {
            Err(Error::new(
                t.line,
                t.col,
                format!("expected {what}, found {}", t.kind),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span)> {
        let t = self.bump();
        match t.kind {
            TokenKind::Ident(s) => Ok((s, Span::new(t.line, t.col))),
            other => Err(Error::new(
                t.line,
                t.col,
                format!("expected {what}, found {other}"),
            )),
        }
    }

    /// Parses a `{ key = value; ... }` attribute block.
    fn attr_block(&mut self) -> Result<Vec<Attr>> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut attrs = Vec::new();
        loop {
            let t = self.bump();
            match attr_key(&t.kind) {
                None if t.kind == TokenKind::RBrace => return Ok(attrs),
                Some(key) => {
                    let key_span = Span::new(t.line, t.col);
                    self.expect(TokenKind::Assign, "`=`")?;
                    let v = self.bump();
                    let value_span = Span::new(v.line, v.col);
                    let value = match v.kind {
                        TokenKind::Int(n) => Value::Int(n),
                        TokenKind::Ident(s) => Value::Ident(s),
                        other => {
                            return Err(Error::new(
                                v.line,
                                v.col,
                                format!("expected attribute value, found {other}"),
                            ))
                        }
                    };
                    self.expect(TokenKind::Semi, "`;`")?;
                    attrs.push(Attr {
                        key,
                        key_span,
                        value,
                        value_span,
                    });
                }
                None => {
                    return Err(Error::new(
                        t.line,
                        t.col,
                        format!("expected attribute or `}}`, found {}", t.kind),
                    ))
                }
            }
        }
    }

    fn platform(&mut self) -> Result<SocDesc> {
        let kw = self.expect(TokenKind::KwPlatform, "`platform`")?;
        let plat_span = Span::new(kw.line, kw.col);
        let (name, _) = self.expect_ident("platform name")?;
        self.expect(TokenKind::LBrace, "`{`")?;

        let mut desc = SocDesc {
            name,
            cores: Vec::new(),
            clusters: Vec::new(),
            shared_words: 64 * 1024,
            local_words: 16 * 1024,
            cache: Some(CacheConfig::default()),
            interconnect: SocInterconnect::Bus {
                latency_ns: 50,
                occupancy_ns: 10,
            },
            peripherals: Vec::new(),
            budget: SocBudget::default(),
            memory_span: plat_span,
            interconnect_span: plat_span,
            cache_span: plat_span,
            budget_span: plat_span,
        };
        let mut seen_memory = false;
        let mut seen_cache = false;
        let mut seen_interconnect = false;
        let mut seen_budget = false;

        loop {
            let t = self.bump();
            let span = Span::new(t.line, t.col);
            match t.kind {
                TokenKind::RBrace => break,
                TokenKind::KwCluster => self.cluster(&mut desc, span)?,
                TokenKind::KwCore => self.core(&mut desc, None, span)?,
                TokenKind::KwMemory => {
                    unique_section(&mut seen_memory, "memory", span)?;
                    desc.memory_span = span;
                    self.memory(&mut desc)?;
                }
                TokenKind::KwCache => {
                    unique_section(&mut seen_cache, "cache", span)?;
                    desc.cache_span = span;
                    self.cache(&mut desc)?;
                }
                TokenKind::KwInterconnect => {
                    unique_section(&mut seen_interconnect, "interconnect", span)?;
                    desc.interconnect_span = span;
                    self.interconnect(&mut desc)?;
                }
                TokenKind::KwBudget => {
                    unique_section(&mut seen_budget, "budget", span)?;
                    desc.budget_span = span;
                    self.budget(&mut desc)?;
                }
                TokenKind::KwTimer => self.periph(&mut desc, span, "timer")?,
                TokenKind::KwMailbox => self.periph(&mut desc, span, "mailbox")?,
                TokenKind::KwSemaphore => self.periph(&mut desc, span, "semaphore")?,
                TokenKind::KwDma => self.periph(&mut desc, span, "dma")?,
                TokenKind::Ident(w) => {
                    return Err(Error::new(
                        t.line,
                        t.col,
                        format!("unknown declaration keyword `{w}`"),
                    ))
                }
                other => {
                    return Err(Error::new(
                        t.line,
                        t.col,
                        format!("expected declaration or `}}`, found {other}"),
                    ))
                }
            }
        }
        self.expect(TokenKind::Eof, "end of input")?;

        // Late validation that needs the whole description: cluster
        // references (forward references are allowed) and the core count.
        for core in &desc.cores {
            if let Some(cl) = &core.cluster {
                if !desc.clusters.contains(cl) {
                    return Err(Error::new(
                        core.span.line,
                        core.span.col,
                        format!(
                            "core `{}` references unknown cluster `{cl}` (declared: {})",
                            core.name,
                            if desc.clusters.is_empty() {
                                "none".to_string()
                            } else {
                                desc.clusters.join(", ")
                            }
                        ),
                    ));
                }
            }
        }
        if desc.cores.is_empty() {
            return Err(Error::new(
                plat_span.line,
                plat_span.col,
                format!("platform `{}` declares no cores", desc.name),
            ));
        }
        Ok(desc)
    }

    fn cluster(&mut self, desc: &mut SocDesc, span: Span) -> Result<()> {
        let (name, _) = self.expect_ident("cluster name")?;
        if desc.clusters.contains(&name) {
            return Err(Error::new(
                span.line,
                span.col,
                format!("duplicate cluster `{name}`"),
            ));
        }
        desc.clusters.push(name.clone());
        self.expect(TokenKind::LBrace, "`{`")?;
        loop {
            let t = self.bump();
            let ispan = Span::new(t.line, t.col);
            match t.kind {
                TokenKind::RBrace => return Ok(()),
                TokenKind::KwCore => self.core(desc, Some(name.clone()), ispan)?,
                other => {
                    return Err(Error::new(
                        t.line,
                        t.col,
                        format!("expected `core` or `}}` inside cluster, found {other}"),
                    ))
                }
            }
        }
    }

    fn core(&mut self, desc: &mut SocDesc, cluster: Option<String>, span: Span) -> Result<()> {
        let (name, _) = self.expect_ident("core name")?;
        if desc.cores.iter().any(|c| c.name == name) {
            return Err(Error::new(
                span.line,
                span.col,
                format!("duplicate core `{name}`"),
            ));
        }
        let mut class = None;
        let mut freq_khz = None;
        let mut cluster = cluster;
        let mut area_mmm2 = None;
        let mut power_uw = None;
        for a in self.attr_block()? {
            match a.key.as_str() {
                "class" => {
                    let v = attr_ident(&a, "a core class (apu, rpu, dsp, accel)")?;
                    class = Some(CoreClass::parse(&v).ok_or_else(|| {
                        Error::new(
                            a.value_span.line,
                            a.value_span.col,
                            format!("unknown core class `{v}` (expected apu, rpu, dsp, accel)"),
                        )
                    })?);
                }
                "freq_mhz" => {
                    freq_khz = Some(attr_range(&a, 1, 10_000)? as u64 * 1000);
                }
                "freq_khz" => {
                    freq_khz = Some(attr_range(&a, 1, 10_000_000)? as u64);
                }
                "cluster" => {
                    cluster = Some(attr_ident(&a, "a cluster name")?);
                }
                "area_mmm2" => area_mmm2 = Some(attr_range(&a, 1, 1_000_000)? as u64),
                "power_uw" => power_uw = Some(attr_range(&a, 1, 1_000_000_000)? as u64),
                other => {
                    return Err(Error::new(
                        a.key_span.line,
                        a.key_span.col,
                        format!("unknown core attribute `{other}`"),
                    ))
                }
            }
        }
        let class = class.ok_or_else(|| {
            Error::new(
                span.line,
                span.col,
                format!("core `{name}` is missing the required `class` attribute"),
            )
        })?;
        let freq_khz = freq_khz.ok_or_else(|| {
            Error::new(
                span.line,
                span.col,
                format!(
                    "core `{name}` is missing the required `freq_mhz` (or `freq_khz`) attribute"
                ),
            )
        })?;
        desc.cores.push(SocCore {
            name,
            class,
            freq_khz,
            cluster,
            area_mmm2,
            power_uw,
            span,
        });
        Ok(())
    }

    fn memory(&mut self, desc: &mut SocDesc) -> Result<()> {
        for a in self.attr_block()? {
            match a.key.as_str() {
                "shared_words" => desc.shared_words = attr_range(&a, 1, MAX_WORDS)? as usize,
                "local_words" => desc.local_words = attr_range(&a, 0, MAX_WORDS)? as usize,
                other => {
                    return Err(Error::new(
                        a.key_span.line,
                        a.key_span.col,
                        format!("unknown memory attribute `{other}`"),
                    ))
                }
            }
        }
        Ok(())
    }

    fn cache(&mut self, desc: &mut SocDesc) -> Result<()> {
        if self.peek().kind == TokenKind::KwNone {
            self.bump();
            self.expect(TokenKind::Semi, "`;`")?;
            desc.cache = None;
            return Ok(());
        }
        let mut cfg = CacheConfig::default();
        for a in self.attr_block()? {
            match a.key.as_str() {
                "sets" => cfg.sets = attr_pow2(&a, 1 << 16)?,
                "assoc" => cfg.assoc = attr_range(&a, 1, 64)? as u32,
                "line_words" => cfg.line_words = attr_pow2(&a, 1 << 10)?,
                "hit_cycles" => cfg.hit_cycles = attr_range(&a, 0, 1_000)? as u64,
                other => {
                    return Err(Error::new(
                        a.key_span.line,
                        a.key_span.col,
                        format!("unknown cache attribute `{other}`"),
                    ))
                }
            }
        }
        desc.cache = Some(cfg);
        Ok(())
    }

    fn interconnect(&mut self, desc: &mut SocDesc) -> Result<()> {
        let t = self.bump();
        match t.kind {
            TokenKind::KwBus => {
                let mut latency_ns = 50u64;
                let mut occupancy_ns = 10u64;
                for a in self.attr_block()? {
                    match a.key.as_str() {
                        "latency_ns" => latency_ns = attr_range(&a, 0, 1_000_000)? as u64,
                        "occupancy_ns" => occupancy_ns = attr_range(&a, 0, 1_000_000)? as u64,
                        other => {
                            return Err(Error::new(
                                a.key_span.line,
                                a.key_span.col,
                                format!("unknown bus attribute `{other}`"),
                            ))
                        }
                    }
                }
                desc.interconnect = SocInterconnect::Bus {
                    latency_ns,
                    occupancy_ns,
                };
            }
            TokenKind::KwMesh => {
                let mut width = 0usize;
                let mut height = 0usize;
                let mut hop_ns = 5u64;
                let mut link_ns = 2u64;
                for a in self.attr_block()? {
                    match a.key.as_str() {
                        "width" => width = attr_range(&a, 1, 64)? as usize,
                        "height" => height = attr_range(&a, 1, 64)? as usize,
                        "hop_ns" => hop_ns = attr_range(&a, 0, 1_000_000)? as u64,
                        "link_ns" => link_ns = attr_range(&a, 0, 1_000_000)? as u64,
                        other => {
                            return Err(Error::new(
                                a.key_span.line,
                                a.key_span.col,
                                format!("unknown mesh attribute `{other}`"),
                            ))
                        }
                    }
                }
                if width == 0 || height == 0 {
                    return Err(Error::new(
                        t.line,
                        t.col,
                        "mesh interconnect requires `width` and `height`",
                    ));
                }
                desc.interconnect = SocInterconnect::Mesh {
                    width,
                    height,
                    hop_ns,
                    link_ns,
                };
            }
            other => {
                return Err(Error::new(
                    t.line,
                    t.col,
                    format!("expected `bus` or `mesh`, found {other}"),
                ))
            }
        }
        Ok(())
    }

    fn budget(&mut self, desc: &mut SocDesc) -> Result<()> {
        for a in self.attr_block()? {
            match a.key.as_str() {
                "max_area_mm2" => {
                    desc.budget.max_area_mm2 = Some(attr_range(&a, 1, 1_000_000)? as u64)
                }
                "max_power_mw" => {
                    desc.budget.max_power_mw = Some(attr_range(&a, 1, 1_000_000_000)? as u64)
                }
                other => {
                    return Err(Error::new(
                        a.key_span.line,
                        a.key_span.col,
                        format!("unknown budget attribute `{other}`"),
                    ))
                }
            }
        }
        Ok(())
    }

    fn periph(&mut self, desc: &mut SocDesc, span: Span, kind: &str) -> Result<()> {
        let (name, _) = self.expect_ident(&format!("{kind} name"))?;
        if desc.peripherals.iter().any(|p| p.name == name) {
            return Err(Error::new(
                span.line,
                span.col,
                format!("duplicate peripheral `{name}`"),
            ));
        }
        let attrs = if self.peek().kind == TokenKind::Semi {
            self.bump();
            Vec::new()
        } else {
            self.attr_block()?
        };
        let kind = match kind {
            "timer" => {
                reject_attrs(&attrs, "timer")?;
                SocPeriphKind::Timer
            }
            "dma" => {
                reject_attrs(&attrs, "dma")?;
                SocPeriphKind::Dma
            }
            "mailbox" => {
                let mut capacity = 16usize;
                for a in &attrs {
                    match a.key.as_str() {
                        "capacity" => capacity = attr_range(a, 1, MAX_WORDS)? as usize,
                        other => {
                            return Err(Error::new(
                                a.key_span.line,
                                a.key_span.col,
                                format!("unknown mailbox attribute `{other}`"),
                            ))
                        }
                    }
                }
                SocPeriphKind::Mailbox { capacity }
            }
            _ => {
                let mut count = 1i64;
                for a in &attrs {
                    match a.key.as_str() {
                        "count" => count = attr_range(a, 0, MAX_WORDS)?,
                        other => {
                            return Err(Error::new(
                                a.key_span.line,
                                a.key_span.col,
                                format!("unknown semaphore attribute `{other}`"),
                            ))
                        }
                    }
                }
                SocPeriphKind::Semaphore { count }
            }
        };
        desc.peripherals.push(SocPeriph { name, kind, span });
        Ok(())
    }
}

/// Returns the textual form of a token usable as an attribute key:
/// identifiers and keywords (so `cluster = host;` works inside a core
/// block even though `cluster` is a section keyword).
fn attr_key(kind: &TokenKind) -> Option<String> {
    match kind {
        TokenKind::Ident(s) => Some(s.clone()),
        TokenKind::KwPlatform => Some("platform".into()),
        TokenKind::KwCluster => Some("cluster".into()),
        TokenKind::KwCore => Some("core".into()),
        TokenKind::KwMemory => Some("memory".into()),
        TokenKind::KwCache => Some("cache".into()),
        TokenKind::KwInterconnect => Some("interconnect".into()),
        TokenKind::KwBudget => Some("budget".into()),
        TokenKind::KwTimer => Some("timer".into()),
        TokenKind::KwMailbox => Some("mailbox".into()),
        TokenKind::KwSemaphore => Some("semaphore".into()),
        TokenKind::KwDma => Some("dma".into()),
        TokenKind::KwBus => Some("bus".into()),
        TokenKind::KwMesh => Some("mesh".into()),
        TokenKind::KwNone => Some("none".into()),
        _ => None,
    }
}

fn unique_section(seen: &mut bool, what: &str, span: Span) -> Result<()> {
    if *seen {
        return Err(Error::new(
            span.line,
            span.col,
            format!("duplicate `{what}` section"),
        ));
    }
    *seen = true;
    Ok(())
}

fn reject_attrs(attrs: &[Attr], kind: &str) -> Result<()> {
    if let Some(a) = attrs.first() {
        return Err(Error::new(
            a.key_span.line,
            a.key_span.col,
            format!("unknown {kind} attribute `{}`", a.key),
        ));
    }
    Ok(())
}

fn attr_ident(a: &Attr, what: &str) -> Result<String> {
    match &a.value {
        Value::Ident(s) => Ok(s.clone()),
        Value::Int(n) => Err(Error::new(
            a.value_span.line,
            a.value_span.col,
            format!("`{}` expects {what}, found integer `{n}`", a.key),
        )),
    }
}

fn attr_range(a: &Attr, lo: i64, hi: i64) -> Result<i64> {
    match &a.value {
        Value::Int(n) if (lo..=hi).contains(n) => Ok(*n),
        Value::Int(n) => Err(Error::new(
            a.value_span.line,
            a.value_span.col,
            format!("`{}` = {n} is out of range (expected {lo}..={hi})", a.key),
        )),
        Value::Ident(s) => Err(Error::new(
            a.value_span.line,
            a.value_span.col,
            format!("`{}` expects an integer, found `{s}`", a.key),
        )),
    }
}

fn attr_pow2(a: &Attr, hi: i64) -> Result<u32> {
    let v = attr_range(a, 1, hi)?;
    if !(v as u64).is_power_of_two() {
        return Err(Error::new(
            a.value_span.line,
            a.value_span.col,
            format!("`{}` = {v} must be a power of two", a.key),
        ));
    }
    Ok(v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "platform p { core c0 { class = rpu; freq_mhz = 100; } }";

    #[test]
    fn parses_minimal_platform() {
        let d = parse(MINIMAL).unwrap();
        assert_eq!(d.name, "p");
        assert_eq!(d.cores.len(), 1);
        assert_eq!(d.cores[0].freq_khz, 100_000);
        assert_eq!(d.shared_words, 64 * 1024);
        assert!(d.cache.is_some());
    }

    #[test]
    fn parses_clusters_and_refs() {
        let d = parse(
            "platform p {
               cluster radio { core a { class = apu; freq_mhz = 600; } }
               core b { class = dsp; freq_mhz = 200; cluster = radio; }
             }",
        )
        .unwrap();
        assert_eq!(d.clusters, vec!["radio".to_string()]);
        assert_eq!(d.cores[1].cluster.as_deref(), Some("radio"));
    }

    #[test]
    fn rejects_unknown_cluster_ref() {
        let e = parse("platform p { core b { class = dsp; freq_mhz = 200; cluster = nope; } }")
            .unwrap_err();
        assert!(e.msg.contains("unknown cluster `nope`"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_duplicates() {
        for src in [
            "platform p { core a { class = rpu; freq_mhz = 1; } core a { class = rpu; freq_mhz = 1; } }",
            "platform p { cluster x {} cluster x {} core a { class = rpu; freq_mhz = 1; } }",
            "platform p { core a { class = rpu; freq_mhz = 1; } timer t; timer t; }",
            "platform p { core a { class = rpu; freq_mhz = 1; } memory {} memory {} }",
        ] {
            let e = parse(src).unwrap_err();
            assert!(e.msg.contains("duplicate"), "{src} -> {e}");
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let e = parse("platform p { core a { class = rpu; freq_mhz = 0; } }").unwrap_err();
        assert!(e.msg.contains("out of range"), "{e}");
        let e = parse("platform p { core a { class = rpu; freq_mhz = 1; } cache { sets = 3; } }")
            .unwrap_err();
        assert!(e.msg.contains("power of two"), "{e}");
    }

    #[test]
    fn rejects_unknown_keywords_and_attrs() {
        let e = parse("platform p { gizmo g; }").unwrap_err();
        assert!(e.msg.contains("unknown declaration keyword `gizmo`"), "{e}");
        let e = parse("platform p { core a { class = rpu; freq_mhz = 1; wat = 2; } }").unwrap_err();
        assert!(e.msg.contains("unknown core attribute `wat`"), "{e}");
    }

    #[test]
    fn requires_cores() {
        let e = parse("platform empty { }").unwrap_err();
        assert!(e.msg.contains("declares no cores"), "{e}");
    }

    #[test]
    fn periph_order_is_preserved() {
        let d = parse(
            "platform p { core a { class = rpu; freq_mhz = 1; }
              timer t0; mailbox m0 { capacity = 4; } semaphore s0 { count = 2; } dma d0; }",
        )
        .unwrap();
        let names: Vec<&str> = d.peripherals.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["t0", "m0", "s0", "d0"]);
    }
}
