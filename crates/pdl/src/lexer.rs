//! The `.soc` lexer (same hand-rolled idiom as the mini-C front end).

use crate::error::{Error, Result};
use crate::token::{Token, TokenKind};

/// Tokenizes `.soc` source text.
///
/// Supports `//` line comments and `/* */` block comments, decimal and
/// `0x` hexadecimal integer literals.
///
/// # Errors
///
/// Returns an [`Error`] at the first unrecognised character or unterminated
/// block comment.
///
/// # Examples
///
/// ```
/// use mpsoc_pdl::lexer::lex;
/// let toks = lex("core c0 { freq_mhz = 100; }").unwrap();
/// assert_eq!(toks.len(), 9); // core, c0, {, freq_mhz, =, 100, ;, }, eof
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let (sl, sc) = (line, col);
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= chars.len() {
                        return Err(Error::new(sl, sc, "unterminated block comment"));
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                let scol = col;
                let value: i64 = if c == '0' && matches!(next, Some('x') | Some('X')) {
                    i += 2;
                    let hstart = i;
                    while i < chars.len() && chars[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hstart {
                        return Err(Error::new(line, scol, "empty hex literal"));
                    }
                    let text: String = chars[hstart..i].iter().collect();
                    i64::from_str_radix(&text, 16)
                        .map_err(|_| Error::new(line, scol, "hex literal overflows i64"))?
                } else {
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    text.parse()
                        .map_err(|_| Error::new(line, scol, "integer literal overflows i64"))?
                };
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                    col: scol,
                });
                col += i - start;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let scol = col;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let kind = match text.as_str() {
                    "platform" => TokenKind::KwPlatform,
                    "cluster" => TokenKind::KwCluster,
                    "core" => TokenKind::KwCore,
                    "memory" => TokenKind::KwMemory,
                    "cache" => TokenKind::KwCache,
                    "interconnect" => TokenKind::KwInterconnect,
                    "budget" => TokenKind::KwBudget,
                    "timer" => TokenKind::KwTimer,
                    "mailbox" => TokenKind::KwMailbox,
                    "semaphore" => TokenKind::KwSemaphore,
                    "dma" => TokenKind::KwDma,
                    "bus" => TokenKind::KwBus,
                    "mesh" => TokenKind::KwMesh,
                    "none" => TokenKind::KwNone,
                    _ => TokenKind::Ident(text),
                };
                tokens.push(Token {
                    kind,
                    line,
                    col: scol,
                });
                col += i - start;
            }
            '{' => push!(TokenKind::LBrace, 1),
            '}' => push!(TokenKind::RBrace, 1),
            '=' => push!(TokenKind::Assign, 1),
            ';' => push!(TokenKind::Semi, 1),
            other => {
                return Err(Error::new(
                    line,
                    col,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_core_decl() {
        assert_eq!(
            kinds("core c0 { freq_mhz = 0x64; }"),
            vec![
                TokenKind::KwCore,
                TokenKind::Ident("c0".into()),
                TokenKind::LBrace,
                TokenKind::Ident("freq_mhz".into()),
                TokenKind::Assign,
                TokenKind::Int(100),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("core /* block \n comment */ a; // line\ncore b;"),
            kinds("core a; core b;")
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("core\n  foo;").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn rejects_unknown_char() {
        let e = lex("core $x;").unwrap_err();
        assert!(e.msg.contains('$'));
        assert_eq!(e.col, 6);
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(kinds("meshy")[0], TokenKind::Ident("meshy".into()));
        assert_eq!(kinds("mesh")[0], TokenKind::KwMesh);
    }
}
