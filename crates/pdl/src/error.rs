//! Source-located error type for the platform description language.

use std::fmt;

/// A lexing, parsing, or validation error with source position.
///
/// Every failure mode of the `.soc` front end — including platform-builder
/// rejections surfaced during compilation — carries the 1-based line/column
/// of the construct that caused it, so tooling can point at the offending
/// text. The front end never panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// 1-based line of the offending construct.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl Error {
    /// Creates an error at a position.
    pub fn new(line: usize, col: usize, msg: impl Into<String>) -> Self {
        Error {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias for the `.soc` front end.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_position() {
        let e = Error::new(7, 3, "unknown core class `gpu`");
        assert_eq!(e.to_string(), "7:3: unknown core class `gpu`");
    }
}
