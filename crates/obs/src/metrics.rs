//! Named monotonic counters and high-water gauges.
//!
//! A [`MetricsRegistry`] is a flat namespace of metrics created on first
//! use. Handles ([`Counter`], [`Gauge`]) are cheap `Arc<AtomicU64>` clones:
//! the registry lock is taken only at registration, never on the hot path.
//! Incrementing a counter is a single relaxed atomic add, so simulator
//! inner loops can afford to keep handles around and bump them per step.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter (events, cycles, bytes, ...).
#[derive(Clone, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge tracking a current value plus its high-water mark.
#[derive(Clone, Debug)]
pub struct Gauge {
    value: Arc<AtomicU64>,
    high_water: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the current value, updating the high-water mark if exceeded.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever [`set`](Gauge::set).
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// What kind of metric a [`MetricSample`] came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonic [`Counter`].
    Counter,
    /// A [`Gauge`]; the sample's `value` is the current value and
    /// `high_water` the maximum observed.
    Gauge,
}

/// A point-in-time reading of one metric, as returned by
/// [`MetricsRegistry::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSample {
    /// Registered metric name, e.g. `"cache.misses"`.
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Current value.
    pub value: u64,
    /// High-water mark (equals `value` for counters).
    pub high_water: u64,
}

enum Entry {
    Counter(Counter),
    Gauge(Gauge),
}

/// A registry of named metrics, shared across simulator layers.
///
/// Names are dotted paths by convention (`"noc.transfers"`,
/// `"sched.deadline_misses"`). Asking for an existing name returns a handle
/// to the same underlying metric; asking for an existing name *of the other
/// kind* panics, since that is always an instrumentation bug.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, Entry)>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a gauge.
    pub fn counter(&self, name: &str) -> Counter {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, entry)) = entries.iter().find(|(n, _)| n == name) {
            match entry {
                Entry::Counter(c) => return c.clone(),
                Entry::Gauge(_) => panic!("metric {name:?} is a gauge, not a counter"),
            }
        }
        let c = Counter {
            value: Arc::new(AtomicU64::new(0)),
        };
        entries.push((name.to_string(), Entry::Counter(c.clone())));
        c
    }

    /// Returns the gauge named `name`, creating it at zero if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, entry)) = entries.iter().find(|(n, _)| n == name) {
            match entry {
                Entry::Gauge(g) => return g.clone(),
                Entry::Counter(_) => panic!("metric {name:?} is a counter, not a gauge"),
            }
        }
        let g = Gauge {
            value: Arc::new(AtomicU64::new(0)),
            high_water: Arc::new(AtomicU64::new(0)),
        };
        entries.push((name.to_string(), Entry::Gauge(g.clone())));
        g
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True if no metric has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time reading of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<MetricSample> = entries
            .iter()
            .map(|(name, entry)| match entry {
                Entry::Counter(c) => {
                    let v = c.get();
                    MetricSample {
                        name: name.clone(),
                        kind: MetricKind::Counter,
                        value: v,
                        high_water: v,
                    }
                }
                Entry::Gauge(g) => MetricSample {
                    name: name.clone(),
                    kind: MetricKind::Gauge,
                    value: g.get(),
                    high_water: g.high_water(),
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// A plain-text dump of all metrics, one `name value` line per metric
    /// (gauges also show their high-water mark), sorted by name.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in self.snapshot() {
            match s.kind {
                MetricKind::Counter => {
                    let _ = writeln!(out, "{} {}", s.name, s.value);
                }
                MetricKind::Gauge => {
                    let _ = writeln!(out, "{} {} (hwm {})", s.name, s.value, s.high_water);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        let mut last = c.get();
        for i in 0..100 {
            if i % 3 == 0 {
                c.add(5);
            } else {
                c.inc();
            }
            let now = c.get();
            assert!(now > last, "counter must only increase");
            last = now;
        }
    }

    #[test]
    fn same_name_shares_storage() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("shared");
        let b = reg.counter("shared");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("occ");
        g.set(4);
        g.set(9);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 9);
    }

    #[test]
    #[should_panic(expected = "is a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("m");
        reg.counter("m");
    }

    #[test]
    fn snapshot_and_dump_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.gauge("a.occ").set(5);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a.occ");
        assert_eq!(snap[0].kind, MetricKind::Gauge);
        assert_eq!(snap[1].value, 2);
        let dump = reg.dump();
        assert!(dump.contains("a.occ 5 (hwm 5)"));
        assert!(dump.contains("b.count 2"));
    }
}
