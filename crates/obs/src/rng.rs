//! Seeded deterministic randomness — a tiny xorshift64* generator.
//!
//! The suite's experiments sweep parameters over populations of random but
//! *reproducible* inputs; its property tests drive invariants with seeded
//! case generators. Both flow through this PRNG so the workspace needs no
//! external `rand` crate and every run is bit-reproducible from its seed.
//!
//! xorshift64* (Marsaglia 2003 / Vigna 2014) passes the statistical tests
//! that matter for workload generation; it is explicitly **not** a
//! cryptographic generator.

/// A seeded xorshift64* pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use mpsoc_obs::rng::XorShift64Star;
///
/// let mut a = XorShift64Star::new(42);
/// let mut b = XorShift64Star::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let v = a.u64_in(10, 20);
/// assert!((10..=20).contains(&v));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from `seed`. Any seed (including 0) is valid;
    /// the internal state is scrambled to avoid the all-zero fixed point.
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493)
                | 1,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A uniform value in `[lo, hi]` (inclusive). Uses modulo reduction —
    /// the bias is negligible for the small ranges the suite draws.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: lo {lo} > hi {hi}");
        let span = hi - lo + 1;
        if span == 0 {
            // lo == 0 && hi == u64::MAX: the full domain.
            return self.next_u64();
        }
        lo + self.next_u64() % span
    }

    /// A uniform signed value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in: lo {lo} > hi {hi}");
        let span = (hi - lo) as u64 + 1;
        if span == 0 {
            return self.next_u64() as i64;
        }
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform index in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `pct`/100.
    pub fn chance_pct(&mut self, pct: u8) -> bool {
        (self.next_u64() % 100) < pct as u64
    }

    /// Fills `out` with uniform values in `[lo, hi]`.
    pub fn fill_i64(&mut self, out: &mut [i64], lo: i64, hi: i64) {
        for v in out {
            *v = self.i64_in(lo, hi);
        }
    }

    /// Splits off an independent child generator: draws one value and
    /// reseeds a fresh generator from it.
    ///
    /// This is the suite's *seed splitter* for deterministic parallelism:
    /// a parent seeded from the caller's seed hands each worker `i` the
    /// `i`-th split, so the work a worker does depends only on
    /// `(caller seed, worker index)` — never on thread count or timing.
    pub fn split(&mut self) -> XorShift64Star {
        XorShift64Star::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64Star::new(7);
        let mut b = XorShift64Star::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64Star::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = XorShift64Star::new(0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        assert_ne!(vals[0], vals[1]);
    }

    #[test]
    fn ranges_are_inclusive_and_bounded() {
        let mut r = XorShift64Star::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.u64_in(2, 5);
            assert!((2..=5).contains(&v));
            lo_seen |= v == 2;
            hi_seen |= v == 5;
            let s = r.i64_in(-3, 3);
            assert!((-3..=3).contains(&s));
        }
        assert!(lo_seen && hi_seen, "both endpoints should occur");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = XorShift64Star::new(11);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn single_point_range() {
        let mut r = XorShift64Star::new(1);
        assert_eq!(r.u64_in(9, 9), 9);
        assert_eq!(r.i64_in(-4, -4), -4);
    }

    #[test]
    fn split_streams_are_independent_and_reproducible() {
        let mut parent_a = XorShift64Star::new(99);
        let mut parent_b = XorShift64Star::new(99);
        let mut c0 = parent_a.split();
        let mut c1 = parent_a.split();
        // Same parent seed, same split index -> same child stream.
        assert_eq!(parent_b.split().next_u64(), c0.next_u64());
        // Distinct split indices -> distinct streams.
        assert_ne!(parent_b.split().next_u64(), c0.next_u64());
        assert_ne!(c0.next_u64(), c1.next_u64());
    }
}
