//! Structured events and the [`EventSink`] trait.
//!
//! Every simulator layer reports the same four event shapes: span begins,
//! span ends, instants, and sampled counter values. An event carries a
//! timestamp in the emitting layer's native time unit, a name, a category
//! (the layer, e.g. `"platform"`), and a track (core id, actor id, task id
//! — whatever the layer uses as its unit of concurrency). Sinks decide what
//! to do with the stream: keep a bounded history ([`crate::ring::RingSink`]),
//! count, filter, forward.

use std::borrow::Cow;

/// The shape of an [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens (Chrome phase `B`).
    Begin,
    /// A span closes (Chrome phase `E`).
    End,
    /// A point event (Chrome phase `i`).
    Instant,
    /// A sampled value, e.g. FIFO occupancy (Chrome phase `C`).
    Counter {
        /// The sampled value.
        value: u64,
    },
}

/// One structured trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in the emitting layer's native unit (cycles, ticks, ...).
    pub ts: u64,
    /// Event name, e.g. `"job"` or an actor name.
    pub name: Cow<'static, str>,
    /// Emitting layer: `"platform"`, `"rtkernel"`, `"dataflow"`, ...
    pub cat: &'static str,
    /// Track within the layer (core/actor/task id); becomes the Chrome tid.
    pub track: u32,
    /// Begin / End / Instant / Counter.
    pub kind: EventKind,
    /// Optional single key/value argument attached to the event.
    pub arg: Option<(&'static str, u64)>,
}

impl Event {
    /// A span-begin event.
    pub fn begin(
        ts: u64,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        track: u32,
    ) -> Self {
        Event {
            ts,
            name: name.into(),
            cat,
            track,
            kind: EventKind::Begin,
            arg: None,
        }
    }

    /// A span-end event.
    pub fn end(ts: u64, name: impl Into<Cow<'static, str>>, cat: &'static str, track: u32) -> Self {
        Event {
            ts,
            name: name.into(),
            cat,
            track,
            kind: EventKind::End,
            arg: None,
        }
    }

    /// A point event.
    pub fn instant(
        ts: u64,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        track: u32,
    ) -> Self {
        Event {
            ts,
            name: name.into(),
            cat,
            track,
            kind: EventKind::Instant,
            arg: None,
        }
    }

    /// A sampled counter value (e.g. buffer occupancy over time).
    pub fn counter(
        ts: u64,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        track: u32,
        value: u64,
    ) -> Self {
        Event {
            ts,
            name: name.into(),
            cat,
            track,
            kind: EventKind::Counter { value },
            arg: None,
        }
    }

    /// Attaches a single key/value argument.
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Self {
        self.arg = Some((key, value));
        self
    }
}

/// Receives the event stream from instrumented code.
pub trait EventSink {
    /// Accepts one event. Sinks must not panic on any well-formed event.
    fn emit(&mut self, ev: Event);
}

/// An `EventSink` that drops everything; occasionally useful in tests.
#[derive(Default, Debug, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _ev: Event) {}
}

/// Reborrows an optional sink for a nested call without consuming it — the
/// pattern every `*_observed` loop needs (`Option::as_deref_mut` does not
/// work here because `&mut dyn Trait` lifetimes are invariant).
pub fn reborrow_sink<'s>(
    sink: &'s mut Option<&mut dyn EventSink>,
) -> Option<&'s mut dyn EventSink> {
    match sink {
        Some(s) => Some(&mut **s),
        None => None,
    }
}

/// The observability context threaded through instrumented code paths:
/// an optional event sink plus an optional metrics registry.
///
/// Both halves are independent — a caller may want only counters (cheap,
/// aggregated) or only events (detailed, bounded history). Uninstrumented
/// callers pass [`ObsCtx::none`]; every hook then reduces to a branch on
/// `None`.
pub struct ObsCtx<'a> {
    /// Where events go, if anywhere.
    pub sink: Option<&'a mut dyn EventSink>,
    /// Where counters live, if anywhere.
    pub metrics: Option<&'a crate::metrics::MetricsRegistry>,
}

impl<'a> ObsCtx<'a> {
    /// A context that observes nothing.
    pub fn none() -> Self {
        ObsCtx {
            sink: None,
            metrics: None,
        }
    }

    /// A context with both an event sink and a metrics registry.
    pub fn new(sink: &'a mut dyn EventSink, metrics: &'a crate::metrics::MetricsRegistry) -> Self {
        ObsCtx {
            sink: Some(sink),
            metrics: Some(metrics),
        }
    }

    /// A context that only records events.
    pub fn events(sink: &'a mut dyn EventSink) -> Self {
        ObsCtx {
            sink: Some(sink),
            metrics: None,
        }
    }

    /// A context that only records metrics.
    pub fn counters(metrics: &'a crate::metrics::MetricsRegistry) -> Self {
        ObsCtx {
            sink: None,
            metrics: Some(metrics),
        }
    }

    /// True if neither events nor metrics are being collected.
    pub fn is_none(&self) -> bool {
        self.sink.is_none() && self.metrics.is_none()
    }

    /// Emits `ev` if a sink is attached. The event is built lazily so
    /// uninstrumented runs don't even construct it.
    pub fn emit(&mut self, ev: impl FnOnce() -> Event) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(ev());
        }
    }

    /// Reborrows the context for a nested call without giving it up.
    pub fn reborrow(&mut self) -> ObsCtx<'_> {
        ObsCtx {
            sink: self.sink.as_deref_mut().map(|s| s as &mut dyn EventSink),
            metrics: self.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::ring::RingSink;

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(Event::begin(1, "a", "c", 0).kind, EventKind::Begin);
        assert_eq!(Event::end(2, "a", "c", 0).kind, EventKind::End);
        assert_eq!(Event::instant(3, "a", "c", 0).kind, EventKind::Instant);
        assert_eq!(
            Event::counter(4, "a", "c", 0, 9).kind,
            EventKind::Counter { value: 9 }
        );
        let ev = Event::instant(5, "a", "c", 2).with_arg("k", 7);
        assert_eq!(ev.arg, Some(("k", 7)));
        assert_eq!(ev.track, 2);
    }

    #[test]
    fn none_ctx_skips_event_construction() {
        let mut ctx = ObsCtx::none();
        assert!(ctx.is_none());
        let mut built = false;
        ctx.emit(|| {
            built = true;
            Event::instant(0, "never", "test", 0)
        });
        assert!(!built, "event closure must not run without a sink");
    }

    #[test]
    fn reborrow_keeps_both_halves_usable() {
        let reg = MetricsRegistry::new();
        let mut sink = RingSink::new(8);
        let mut ctx = ObsCtx::new(&mut sink, &reg);
        {
            let mut inner = ctx.reborrow();
            inner.emit(|| Event::instant(1, "inner", "test", 0));
            if let Some(m) = inner.metrics {
                m.counter("n").inc();
            }
        }
        ctx.emit(|| Event::instant(2, "outer", "test", 0));
        assert_eq!(sink.events().len(), 2);
        assert_eq!(reg.counter("n").get(), 1);
    }
}
