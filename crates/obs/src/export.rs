//! Exporters: Chrome `trace_event` JSON and plain-text metrics dumps.
//!
//! [`chrome_trace`] serialises an event slice into the Chrome Trace Event
//! JSON Array Format, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Each category (layer) becomes its own process
//! (pid) with a `process_name` metadata record, and each track becomes a
//! thread (tid) inside it, so a multi-layer run renders as parallel
//! swim-lanes. Everything is written with `std::fmt` — no serde.

use crate::event::{Event, EventKind};
use std::fmt::Write;

/// Escapes `s` for inclusion in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serialises `events` as Chrome Trace Event JSON (array format).
///
/// Events are sorted by timestamp (stably, so same-timestamp begin/end
/// ordering is preserved), categories are mapped to pids in order of first
/// appearance, and a `process_name` metadata record is emitted per
/// category. Timestamps are taken verbatim as microseconds — each layer's
/// native unit simply becomes "µs" on the timeline, which keeps relative
/// durations within a layer faithful.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut cats: Vec<&'static str> = Vec::new();
    for ev in events {
        if !cats.contains(&ev.cat) {
            cats.push(ev.cat);
        }
    }

    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events[i].ts);

    let mut out = String::new();
    out.push_str("[\n");
    let mut first = true;

    for (pid, cat) in cats.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"",
            pid + 1
        );
        escape_json(cat, &mut out);
        out.push_str("\"}}");
    }

    for &i in &order {
        let ev = &events[i];
        let pid = cats.iter().position(|c| *c == ev.cat).unwrap() + 1;
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ph = match ev.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::Counter { .. } => "C",
        };
        out.push_str("{\"name\":\"");
        escape_json(&ev.name, &mut out);
        let _ = write!(
            out,
            "\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            ev.cat, ph, ev.ts, pid, ev.track
        );
        match ev.kind {
            EventKind::Instant => out.push_str(",\"s\":\"t\""),
            EventKind::Counter { value } => {
                out.push_str(",\"args\":{\"value\":");
                let _ = write!(out, "{value}");
                out.push('}');
            }
            _ => {}
        }
        if let Some((key, value)) = ev.arg {
            if !matches!(ev.kind, EventKind::Counter { .. }) {
                out.push_str(",\"args\":{\"");
                escape_json(key, &mut out);
                let _ = write!(out, "\":{value}");
                out.push('}');
            }
        }
        out.push('}');
    }

    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn emits_all_phases_and_metadata() {
        let events = vec![
            Event::begin(10, "span", "platform", 0),
            Event::end(20, "span", "platform", 0),
            Event::instant(15, "tick", "rtkernel", 1),
            Event::counter(12, "occ", "dataflow", 2, 5),
        ];
        let json = chrome_trace(&events);
        for needle in [
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
            "\"args\":{\"value\":5}",
            "\"name\":\"platform\"",
            "\"name\":\"rtkernel\"",
            "\"name\":\"dataflow\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn sorted_by_timestamp() {
        let events = vec![
            Event::instant(30, "late", "l", 0),
            Event::instant(10, "early", "l", 0),
        ];
        let json = chrome_trace(&events);
        let early = json.find("early").unwrap();
        let late = json.find("late").unwrap();
        assert!(early < late, "events must be sorted by ts");
    }

    #[test]
    fn arg_serialised_for_non_counter() {
        let events = vec![Event::instant(1, "irq", "platform", 0).with_arg("line", 3)];
        let json = chrome_trace(&events);
        assert!(json.contains("\"args\":{\"line\":3}"));
    }

    #[test]
    fn empty_input_is_valid_empty_array() {
        let json = chrome_trace(&[]);
        let trimmed = json.trim();
        assert!(trimmed.starts_with('['));
        assert!(trimmed.ends_with(']'));
        assert!(!trimmed.contains('{'), "no records expected: {json}");
    }
}
