//! Bounded in-memory history: a generic ring plus the [`RingSink`] event sink.
//!
//! Long simulations emit far more events than anyone wants to keep; the ring
//! keeps the most recent `capacity` items and counts what it had to evict,
//! so exporters can say "…and 12 034 earlier events were dropped".

use crate::event::{Event, EventSink};
use std::collections::VecDeque;

/// A bounded FIFO that evicts its oldest element when full.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    items: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Ring {
            items: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends `item`, evicting the oldest element if at capacity.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.dropped += 1;
        }
        self.items.push_back(item);
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of items the ring will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest-first over the retained items.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The retained items oldest-first as a contiguous slice.
    pub fn as_slice(&mut self) -> &[T] {
        self.items.make_contiguous();
        self.items.as_slices().0
    }

    /// Removes and returns all retained items, oldest-first.
    pub fn drain(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }

    /// Drops all retained items (the eviction count is kept).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// An [`EventSink`] backed by a [`Ring`] of [`Event`]s.
#[derive(Clone, Debug)]
pub struct RingSink {
    ring: Ring<Event>,
}

impl RingSink {
    /// Creates a sink retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            ring: Ring::new(capacity),
        }
    }

    /// The retained events oldest-first.
    pub fn events(&mut self) -> &[Event] {
        self.ring.as_slice()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Borrows the underlying ring.
    pub fn ring(&self) -> &Ring<Event> {
        &self.ring
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, ev: Event) {
        self.ring.push(ev);
    }
}

/// A cloneable, shared handle around an [`EventSink`].
///
/// Some consumers take *ownership* of their sink — e.g. the platform's
/// signal-trace spill adapter lives inside the signal board for the whole
/// session. `SharedSink` lets the producer own one handle while the
/// observer keeps another, so the stream can still be inspected or
/// exported afterwards. Backed by `Arc<Mutex<_>>` so the owning consumer
/// (and the platform embedding it) can cross threads; contention is nil in
/// the single-threaded simulator loop.
#[derive(Debug, Default)]
pub struct SharedSink<S: EventSink>(std::sync::Arc<std::sync::Mutex<S>>);

impl<S: EventSink> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink(std::sync::Arc::clone(&self.0))
    }
}

impl<S: EventSink> SharedSink<S> {
    /// Wraps `sink` in a shared handle.
    pub fn new(sink: S) -> Self {
        SharedSink(std::sync::Arc::new(std::sync::Mutex::new(sink)))
    }

    /// Runs `f` with mutable access to the wrapped sink.
    ///
    /// # Panics
    ///
    /// If the mutex was poisoned by a panic in another `with` call.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.lock().expect("SharedSink poisoned"))
    }
}

impl<S: EventSink> EventSink for SharedSink<S> {
    fn emit(&mut self, ev: Event) {
        self.0.lock().expect("SharedSink poisoned").emit(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut ring = Ring::new(3);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.as_slice(), &[2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = Ring::new(0);
        ring.push('a');
        ring.push('b');
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.as_slice(), &['b']);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn drain_empties_but_keeps_drop_count() {
        let mut ring = Ring::new(2);
        ring.push(1);
        ring.push(2);
        ring.push(3);
        let got = ring.drain();
        assert_eq!(got, vec![2, 3]);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn shared_sink_is_readable_through_either_handle() {
        let shared = SharedSink::new(RingSink::new(4));
        let mut producer = shared.clone();
        producer.emit(Event::instant(7, "e", "test", 0));
        assert_eq!(shared.with(|s| s.events().to_vec()).len(), 1);
        assert_eq!(shared.with(|s| s.events()[0].ts), 7);
    }

    #[test]
    fn ring_sink_keeps_recent_events() {
        let mut sink = RingSink::new(2);
        for t in 0..4u64 {
            sink.emit(Event::instant(t, "e", "test", 0));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 2);
        let ts: Vec<u64> = sink.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3]);
    }
}
