//! # mpsoc-obs — suite-wide observability (paper Section VII)
//!
//! Section VII of *"Programming MPSoC Platforms: Road Works Ahead!"* argues
//! that *"hardware and software tracing capabilities address another major
//! problem of multi core software development — the ability to keep the
//! overview during debugging"*. This crate is the measurement substrate the
//! whole suite shares: every simulator layer (platform, rtkernel, dataflow,
//! maps, cic, vpdebug) reports into the same counters and the same event
//! stream, so one run can be inspected end to end.
//!
//! The crate is **pure std** — no external dependencies — so the workspace
//! builds hermetically (offline, no crates.io access).
//!
//! | Need | Module |
//! |---|---|
//! | Named monotonic counters and high-water gauges | [`metrics`] |
//! | Structured begin/end/instant/counter events | [`event`] |
//! | Bounded in-memory event history | [`ring`] |
//! | Chrome `trace_event` JSON + plain-text metric dumps | [`export`] |
//! | Deterministic seeded randomness (xorshift64*) | [`rng`] |
//!
//! ## Quickstart
//!
//! ```
//! use mpsoc_obs::event::{Event, EventSink};
//! use mpsoc_obs::metrics::MetricsRegistry;
//! use mpsoc_obs::ring::RingSink;
//!
//! let registry = MetricsRegistry::new();
//! let fires = registry.counter("dataflow.firings");
//! let mut sink = RingSink::new(1024);
//! for t in 0..3u64 {
//!     fires.inc();
//!     sink.emit(Event::begin(t * 10, "fir", "dataflow", 0));
//!     sink.emit(Event::end(t * 10 + 7, "fir", "dataflow", 0));
//! }
//! assert_eq!(fires.get(), 3);
//! let json = mpsoc_obs::export::chrome_trace(sink.events());
//! assert!(json.contains("\"ph\":\"B\""));
//! ```
//!
//! Instrumented code paths take an [`ObsCtx`]: a pair
//! of optional borrows (event sink + metrics registry). Passing
//! [`ObsCtx::none`] makes every hook a predictable
//! branch on `None` — uninstrumented runs pay nothing beyond that.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod ring;
pub mod rng;

pub use crate::event::{Event, EventKind, EventSink, ObsCtx};
pub use crate::export::chrome_trace;
pub use crate::metrics::{Counter, Gauge, MetricKind, MetricSample, MetricsRegistry};
pub use crate::ring::{Ring, RingSink};
pub use crate::rng::XorShift64Star;
