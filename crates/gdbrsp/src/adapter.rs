//! [`Target`] adapter over the virtual-platform debugger.
//!
//! [`DebugTarget`] owns a [`Debugger`] and translates the word-addressed,
//! multi-core, time-travelling debug model into the flat surface the RSP
//! session (and the headless test runner) drive. The pieces stock GDB has
//! no packets for — time travel, checkpoints, stimulus recording — are
//! exposed as `monitor` commands (see [`DebugTarget::monitor`]).

use mpsoc_platform::isa::{Reg, Word};
use mpsoc_platform::platform::AccessKind;
use mpsoc_vpdebug::{Debugger, OriginFilter, Stop, Watchpoint};

use crate::error::{Error, Result};
use crate::target::{StopReason, Target, WatchKind};

/// Register count exposed over RSP: r0..r15 plus the pc pseudo-register.
pub const NUM_REGS: usize = Reg::COUNT + 1;
/// The pc pseudo-register's number.
pub const PC_REG: usize = Reg::COUNT;

/// One registered stop condition (data watchpoints and the signal-watch
/// monitor extension share the debugger's watchpoint table, so the table
/// index of a [`Stop::Watchpoint`] maps back through this list).
#[derive(Clone, Debug, PartialEq)]
enum WatchEntry {
    Data {
        kind: WatchKind,
        addr: u32,
        len: u32,
    },
    Signal {
        name: String,
    },
}

/// The [`Target`] implementation over a [`Debugger`].
#[derive(Debug)]
pub struct DebugTarget {
    dbg: Debugger,
    /// Breakpoint pcs (each is installed on every core).
    break_pcs: Vec<u32>,
    /// Watchpoint registrations, in debugger-table order.
    watches: Vec<WatchEntry>,
}

impl DebugTarget {
    /// Wraps a debugger.
    pub fn new(dbg: Debugger) -> Self {
        DebugTarget {
            dbg,
            break_pcs: Vec::new(),
            watches: Vec::new(),
        }
    }

    /// The underlying debugger (for assertions the RSP surface does not
    /// cover: signals, region checksums, the stimulus log).
    pub fn debugger(&self) -> &Debugger {
        &self.dbg
    }

    /// The underlying debugger, mutably (program loading, time travel).
    pub fn debugger_mut(&mut self) -> &mut Debugger {
        &mut self.dbg
    }

    /// Unwraps back into the debugger.
    pub fn into_debugger(self) -> Debugger {
        self.dbg
    }

    /// Re-installs every breakpoint and watchpoint into the debugger's
    /// condition tables. Watchpoints are added in registration order, so a
    /// [`Stop::Watchpoint`] index is an index into `self.watches`.
    fn rebuild_conditions(&mut self) {
        self.dbg.clear_conditions();
        for w in &self.watches {
            match w {
                WatchEntry::Data { kind, addr, len } => {
                    let hi = addr.saturating_add((*len).max(1) - 1);
                    self.dbg.add_watchpoint(Watchpoint::Access {
                        lo: *addr,
                        hi,
                        kind: match kind {
                            WatchKind::Write => Some(AccessKind::Write),
                            WatchKind::Read => Some(AccessKind::Read),
                            WatchKind::Access => None,
                        },
                        origin: OriginFilter::Any,
                    });
                }
                WatchEntry::Signal { name } => {
                    self.dbg.add_watchpoint(Watchpoint::Signal {
                        name: name.clone(),
                        value: None,
                    });
                }
            }
        }
        let cores = self.dbg.platform().num_cores();
        for &pc in &self.break_pcs {
            for core in 0..cores {
                self.dbg.add_breakpoint(core, pc);
            }
        }
    }

    /// Maps a debugger stop into the protocol-level reason.
    fn map_stop(&self, stop: Stop) -> StopReason {
        match stop {
            Stop::Breakpoint { core, pc, .. } => StopReason::Breakpoint { core, pc },
            Stop::Watchpoint { index, access } => match self.watches.get(index) {
                Some(WatchEntry::Data { kind, addr, .. }) => StopReason::Watch {
                    kind: *kind,
                    // The faulting address: the temporally first matching
                    // access, for reads and writes alike. Range watchpoints
                    // fall back to the range base only if the access went
                    // unrecorded (never expected for data watchpoints).
                    addr: access.map(|a| a.addr).unwrap_or(*addr),
                },
                Some(WatchEntry::Signal { name }) => StopReason::SignalWatch { name: name.clone() },
                None => StopReason::Fault(format!("stale watchpoint index {index}")),
            },
            Stop::Finished => StopReason::Exited,
            Stop::Budget => StopReason::Budget,
            Stop::Fault(msg) => StopReason::Fault(msg),
        }
    }

    /// Resolves a peripheral reference — a page number or a peripheral
    /// name — to its page.
    fn resolve_page(&self, which: &str) -> Result<usize> {
        if let Ok(page) = parse_num(which) {
            return Ok(page as usize);
        }
        let p = self.dbg.platform();
        // Pages are allocated densely from 0; probe until a gap.
        for page in 0.. {
            match p.peripheral_name(page) {
                Some(name) if name == which => return Ok(page),
                Some(_) => continue,
                None => break,
            }
        }
        Err(Error::Target(format!("no peripheral named {which:?}")))
    }
}

/// Parses a decimal or `0x` hex number (monitor-command convention).
fn parse_num(s: &str) -> Result<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| Error::Packet(format!("bad number {s:?}")))?;
    Ok(if neg { -v } else { v })
}

impl Target for DebugTarget {
    fn num_cores(&self) -> usize {
        self.dbg.platform().num_cores()
    }

    fn read_registers(&self, core: usize) -> Result<Vec<u64>> {
        let c = self.dbg.core_regs(core)?;
        let mut out: Vec<u64> = c.regs().iter().map(|&w| w as u64).collect();
        out.push(u64::from(c.pc()));
        Ok(out)
    }

    fn write_register(&mut self, core: usize, reg: usize, value: u64) -> Result<()> {
        let c = self.dbg.platform_mut().core_mut(core)?;
        if reg < Reg::COUNT {
            c.set_reg(Reg::new(reg as u8), value as Word);
            Ok(())
        } else if reg == PC_REG {
            c.debug_set_pc(value as u32);
            Ok(())
        } else {
            Err(Error::Packet(format!("register {reg} out of range")))
        }
    }

    fn read_mem(&self, addr: u32, len: u32) -> Result<Vec<u64>> {
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            out.push(self.dbg.read_mem(addr + i)? as u64);
        }
        Ok(out)
    }

    fn write_mem(&mut self, addr: u32, values: &[u64]) -> Result<()> {
        for (i, &v) in values.iter().enumerate() {
            self.dbg
                .platform_mut()
                .debug_write(addr + i as u32, v as Word)?;
        }
        Ok(())
    }

    fn step(&mut self) -> Result<StopReason> {
        match self.dbg.step()? {
            Some(stop) => Ok(self.map_stop(stop)),
            None => Ok(StopReason::Step),
        }
    }

    fn cont(&mut self, budget: u64) -> Result<StopReason> {
        let stop = self.dbg.run(budget)?;
        Ok(self.map_stop(stop))
    }

    fn insert_breakpoint(&mut self, pc: u32) -> Result<()> {
        if !self.break_pcs.contains(&pc) {
            self.break_pcs.push(pc);
            self.rebuild_conditions();
        }
        Ok(())
    }

    fn remove_breakpoint(&mut self, pc: u32) -> Result<()> {
        if let Some(i) = self.break_pcs.iter().position(|&p| p == pc) {
            self.break_pcs.remove(i);
            self.rebuild_conditions();
        }
        Ok(())
    }

    fn insert_watchpoint(&mut self, kind: WatchKind, addr: u32, len: u32) -> Result<()> {
        let entry = WatchEntry::Data { kind, addr, len };
        if !self.watches.contains(&entry) {
            self.watches.push(entry);
            self.rebuild_conditions();
        }
        Ok(())
    }

    fn remove_watchpoint(&mut self, kind: WatchKind, addr: u32, len: u32) -> Result<()> {
        let entry = WatchEntry::Data { kind, addr, len };
        if let Some(i) = self.watches.iter().position(|w| *w == entry) {
            self.watches.remove(i);
            self.rebuild_conditions();
        }
        Ok(())
    }

    fn monitor(&mut self, cmd: &str) -> Result<String> {
        let words: Vec<&str> = cmd.split_whitespace().collect();
        match words.as_slice() {
            [] | ["help"] => Ok(MONITOR_HELP.to_string()),
            ["step-back"] => {
                if self.dbg.step_back()? {
                    Ok(format!("at step {}\n", self.dbg.platform().steps()))
                } else {
                    Ok("cannot step back: at origin or past the rewind horizon\n".into())
                }
            }
            ["reverse-continue"] => match self.dbg.reverse_continue()? {
                Some(stop) => {
                    let reason = self.map_stop(stop);
                    Ok(format!(
                        "stopped at step {}: {reason:?}\n",
                        self.dbg.platform().steps()
                    ))
                }
                None => Ok("no earlier stop within the rewind horizon\n".into()),
            },
            ["checkpoint"] => {
                let fresh = self.dbg.take_checkpoint_now()?;
                Ok(format!(
                    "{} at step {} ({} bytes retained)\n",
                    if fresh {
                        "checkpoint"
                    } else {
                        "already checkpointed"
                    },
                    self.dbg.platform().steps(),
                    self.dbg.ring_bytes()
                ))
            }
            ["checkpoints"] => {
                let steps = self.dbg.checkpoint_steps();
                Ok(format!(
                    "{} checkpoints at steps {:?}, {} bytes\n",
                    steps.len(),
                    steps,
                    self.dbg.ring_bytes()
                ))
            }
            ["time-travel", interval, max_cp] => {
                let (iv, cp) = (parse_num(interval)?, parse_num(max_cp)?);
                if iv <= 0 || cp <= 0 {
                    return Err(Error::Packet(
                        "time-travel wants two positive numbers".into(),
                    ));
                }
                self.dbg.enable_time_travel(iv as u64, cp as usize)?;
                Ok(format!(
                    "time travel on: checkpoint every {iv} steps, ~{cp} retained\n"
                ))
            }
            ["watch-signal", name] => {
                self.watches.push(WatchEntry::Signal {
                    name: (*name).to_string(),
                });
                self.rebuild_conditions();
                Ok(format!("watching signal {name}\n"))
            }
            ["stimulus-record", "mailbox", which, value] => {
                let page = self.resolve_page(which)?;
                self.dbg.inject_mailbox_push(page, parse_num(value)?)?;
                Ok(format!("recorded mailbox push to page {page}\n"))
            }
            ["stimulus-record", "signal", name, value] => {
                self.dbg.inject_signal_write(name, parse_num(value)?)?;
                Ok(format!("recorded signal write {name}\n"))
            }
            ["stimulus-record", "irq", core, irq] => {
                let (c, i) = (parse_num(core)?, parse_num(irq)?);
                self.dbg.inject_irq(c as usize, i as u32)?;
                Ok(format!("recorded irq {i} to core {c}\n"))
            }
            ["stimulus-record", "poke", addr, value] => {
                let a = parse_num(addr)?;
                self.dbg.inject_mem_poke(a as u32, parse_num(value)?)?;
                Ok(format!("recorded poke at {a:#x}\n"))
            }
            ["stimulus-record", "dma", which, src, dst, len] => {
                let page = self.resolve_page(which)?;
                self.dbg.inject_dma_descriptor(
                    page,
                    parse_num(src)?,
                    parse_num(dst)?,
                    parse_num(len)?,
                )?;
                Ok(format!("recorded dma descriptor on page {page}\n"))
            }
            ["stimulus-log"] => Ok(format!(
                "{} records\n",
                self.dbg.stimulus_log().records().len()
            )),
            ["state-checksum"] => Ok(format!("{:#018x}\n", self.dbg.platform().state_checksum())),
            ["trace-stats"] => Ok(format!("{}\n", self.dbg.trace_stats())),
            ["where"] => Ok(format!(
                "step {} time {:?}\n",
                self.dbg.platform().steps(),
                self.dbg.now()
            )),
            _ => Err(Error::Packet(format!(
                "unknown monitor command {cmd:?} (try \"monitor help\")"
            ))),
        }
    }
}

const MONITOR_HELP: &str = "\
monitor commands:
  step-back                         rewind one platform step
  reverse-continue                  rewind to the previous stop
  checkpoint                        capture a checkpoint now
  checkpoints                       list retained checkpoint steps
  time-travel INTERVAL MAX          enable time travel
  watch-signal NAME                 stop when a named signal changes
  stimulus-record mailbox P V       record+inject a mailbox push
  stimulus-record signal NAME V     record+inject a signal write
  stimulus-record irq CORE IRQ      record+inject an interrupt
  stimulus-record poke ADDR V       record+inject a memory poke
  stimulus-record dma P SRC DST N   record+inject a DMA descriptor
  stimulus-log                      count recorded stimuli
  state-checksum                    whole-platform state checksum
  trace-stats                       signal-trace ring/spill occupancy
  where                             current step and simulated time
";

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_platform::isa::assemble;
    use mpsoc_platform::platform::PlatformBuilder;
    use mpsoc_platform::Frequency;

    fn target() -> DebugTarget {
        let mut p = PlatformBuilder::new()
            .cores(2, Frequency::mhz(100))
            .shared_words(512)
            .cache(None)
            .build()
            .unwrap();
        let prog = assemble(
            "movi r1, 0\nmovi r3, 20\nloop: addi r1, r1, 1\n\
             movi r2, 0x40\nst r1, r2, 0\nblt r1, r3, loop\nhalt",
        )
        .unwrap();
        p.load_program(0, prog, 0).unwrap();
        DebugTarget::new(Debugger::new(p))
    }

    #[test]
    fn registers_cover_r0_to_pc() {
        let t = target();
        let regs = t.read_registers(0).unwrap();
        assert_eq!(regs.len(), NUM_REGS);
        assert_eq!(regs[PC_REG], 0);
        assert!(t.read_registers(7).is_err());
    }

    #[test]
    fn write_register_and_pc() {
        let mut t = target();
        t.write_register(0, 5, 0xdead).unwrap();
        assert_eq!(t.read_registers(0).unwrap()[5], 0xdead);
        t.write_register(0, PC_REG, 3).unwrap();
        assert_eq!(t.read_registers(0).unwrap()[PC_REG], 3);
        assert!(t.write_register(0, NUM_REGS, 0).is_err());
    }

    #[test]
    fn breakpoint_applies_to_all_cores_and_removes() {
        let mut t = target();
        t.insert_breakpoint(2).unwrap();
        match t.cont(10_000).unwrap() {
            StopReason::Breakpoint { core: 0, pc: 2 } => {}
            other => panic!("unexpected {other:?}"),
        }
        t.remove_breakpoint(2).unwrap();
        assert_eq!(t.cont(10_000).unwrap(), StopReason::Exited);
    }

    #[test]
    fn watchpoint_reports_kind_and_addr() {
        let mut t = target();
        t.insert_watchpoint(WatchKind::Write, 0x40, 1).unwrap();
        match t.cont(10_000).unwrap() {
            StopReason::Watch {
                kind: WatchKind::Write,
                addr: 0x40,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        t.remove_watchpoint(WatchKind::Write, 0x40, 1).unwrap();
        assert_eq!(t.cont(100_000).unwrap(), StopReason::Exited);
    }

    #[test]
    fn monitor_time_travel_and_step_back() {
        let mut t = target();
        assert!(
            t.monitor("checkpoint").is_err(),
            "checkpoints need time travel enabled"
        );
        let refused = t.monitor("step-back").unwrap();
        assert!(refused.contains("cannot step back"), "{refused}");
        t.monitor("time-travel 4 16").unwrap();
        for _ in 0..10 {
            t.step().unwrap();
        }
        let before = t.debugger().platform().state_checksum();
        t.step().unwrap();
        let out = t.monitor("step-back").unwrap();
        assert!(out.contains("at step 10"), "{out}");
        assert_eq!(t.debugger().platform().state_checksum(), before);
    }

    #[test]
    fn monitor_rejects_unknown_commands() {
        let mut t = target();
        assert!(t.monitor("made-up-cmd").is_err());
        assert!(t.monitor("help").unwrap().contains("step-back"));
        assert!(t.monitor("help").unwrap().contains("trace-stats"));
    }

    #[test]
    fn monitor_trace_stats_reports_ring_and_spill() {
        let mut t = target();
        t.debugger_mut()
            .platform_mut()
            .set_trace_budget(2 * mpsoc_platform::TRACE_RECORD_BYTES);
        for i in 1..=5 {
            t.debugger_mut().platform_mut().debug_drive_signal("sig", i);
        }
        let out = t.monitor("trace-stats").unwrap();
        let stats = t.debugger().trace_stats();
        assert_eq!(stats.ring_records, 2);
        assert_eq!(stats.evicted, 3);
        assert!(out.contains("spilled 0"), "{out}");
        assert!(out.contains("evicted 3"), "{out}");
        assert!(
            out.contains(&format!("{}B", 2 * mpsoc_platform::TRACE_RECORD_BYTES)),
            "{out}"
        );
    }

    #[test]
    fn memory_roundtrip() {
        let mut t = target();
        t.write_mem(0x30, &[1, 2, 3]).unwrap();
        assert_eq!(t.read_mem(0x30, 3).unwrap(), vec![1, 2, 3]);
        assert!(t.read_mem(0xffff_0000, 1).is_err());
    }
}
