//! The debug-target abstraction the protocol session drives.
//!
//! [`Target`] is the seam between the GDB-RSP wire protocol and the
//! virtual platform: the session layer ([`crate::session`]) speaks packets
//! on one side and this trait on the other, and the headless test runner
//! drives the *same* trait — so a scenario scripted for CI exercises
//! exactly the surface a live debugger attach does.

use crate::error::Result;

/// Watchpoint flavours, in GDB `Z` packet order: `Z2` = write, `Z3` =
/// read, `Z4` = access (either).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchKind {
    /// Stop on writes (`Z2`, stop reply `watch:`).
    Write,
    /// Stop on reads (`Z3`, stop reply `rwatch:`).
    Read,
    /// Stop on either (`Z4`, stop reply `awatch:`).
    Access,
}

/// Why a resumed target stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A single step completed with no other event.
    Step,
    /// A software breakpoint was hit.
    Breakpoint {
        /// Core that arrived at the breakpoint.
        core: usize,
        /// Its program counter.
        pc: u32,
    },
    /// A data watchpoint was hit.
    Watch {
        /// The flavour of the watchpoint *as registered* — GDB reports
        /// `watch:`/`rwatch:`/`awatch:` by registration, not by the
        /// faulting access's direction.
        kind: WatchKind,
        /// The faulting word address (consistent for read and write hits:
        /// always the address of the temporally first matching access).
        addr: u32,
    },
    /// A named-signal watchpoint fired (a monitor-command extension; no
    /// data address to report).
    SignalWatch {
        /// The signal's name.
        name: String,
    },
    /// Every core halted; the program is done.
    Exited,
    /// The step budget ran out before any stop condition.
    Budget,
    /// A core faulted (divide by zero, unmapped access, …).
    Fault(String),
}

/// A word-addressed, multi-core debug target.
///
/// Addressing note: the platform is *word*-addressed (one address = one
/// 64-bit [`Word`](mpsoc_platform::isa::Word)), and the RSP surface keeps
/// that model — `m addr,len` reads `len` words, each serialised as 8
/// little-endian bytes. Register numbers are `r0..r15` followed by the
/// program counter as register 16.
pub trait Target {
    /// Number of cores (exposed to GDB as threads `1..=n`).
    fn num_cores(&self) -> usize;

    /// All registers of `core`: r0..r15 then pc, as raw 64-bit values.
    ///
    /// # Errors
    ///
    /// For a bad core id.
    fn read_registers(&self, core: usize) -> Result<Vec<u64>>;

    /// Writes one register of `core` (16 = pc).
    ///
    /// # Errors
    ///
    /// For a bad core id or register number.
    fn write_register(&mut self, core: usize, reg: usize, value: u64) -> Result<()>;

    /// Reads `len` words starting at word address `addr` (non-intrusive:
    /// no cache or timing side effects).
    ///
    /// # Errors
    ///
    /// For an unmapped address anywhere in the range.
    fn read_mem(&self, addr: u32, len: u32) -> Result<Vec<u64>>;

    /// Writes consecutive words starting at word address `addr`.
    ///
    /// # Errors
    ///
    /// For an unmapped address anywhere in the range.
    fn write_mem(&mut self, addr: u32, values: &[u64]) -> Result<()>;

    /// Executes one platform step.
    ///
    /// # Errors
    ///
    /// Only for internal inspection failures; simulated faults surface as
    /// [`StopReason::Fault`].
    fn step(&mut self) -> Result<StopReason>;

    /// Runs until a stop condition or `budget` steps.
    ///
    /// # Errors
    ///
    /// As [`step`](Target::step).
    fn cont(&mut self, budget: u64) -> Result<StopReason>;

    /// Inserts a software breakpoint at `pc` on every core (GDB sets
    /// breakpoints without naming a thread).
    ///
    /// # Errors
    ///
    /// If the target cannot accept the breakpoint.
    fn insert_breakpoint(&mut self, pc: u32) -> Result<()>;

    /// Removes the breakpoint at `pc`; a no-op if none is set.
    ///
    /// # Errors
    ///
    /// If the condition table cannot be rebuilt.
    fn remove_breakpoint(&mut self, pc: u32) -> Result<()>;

    /// Inserts a watchpoint over the word range `[addr, addr + len)`.
    ///
    /// # Errors
    ///
    /// If the target cannot accept the watchpoint.
    fn insert_watchpoint(&mut self, kind: WatchKind, addr: u32, len: u32) -> Result<()>;

    /// Removes a watchpoint previously inserted with the same triple.
    ///
    /// # Errors
    ///
    /// If the condition table cannot be rebuilt.
    fn remove_watchpoint(&mut self, kind: WatchKind, addr: u32, len: u32) -> Result<()>;

    /// Executes a `monitor` command (GDB `qRcmd`) and returns its console
    /// output.
    ///
    /// # Errors
    ///
    /// For unknown commands or failed operations; the session reports the
    /// message to the debugger instead of crashing the link.
    fn monitor(&mut self, cmd: &str) -> Result<String>;
}
