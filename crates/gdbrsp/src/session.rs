//! The RSP protocol state machine.
//!
//! A [`Session`] owns a [`Target`] and a [`Framer`]; feed it raw bytes
//! from any transport with [`Session::handle_bytes`] and write back the
//! bytes it returns. It is deliberately transport-free so the identical
//! code path is exercised over TCP and over the in-memory duplex pipe the
//! tests use.
//!
//! Supported packets: `?`, `g`, `G`, `p`, `P`, `m`, `M`, `s`, `c`,
//! `vCont`, `Z0`/`z0` (+`Z1`/`z1` aliases), `Z2`–`Z4`/`z2`–`z4`,
//! `H`, `T`, `qC`, `qfThreadInfo`/`qsThreadInfo`, `qSupported`,
//! `qAttached`, `QStartNoAckMode`, `qRcmd` (monitor commands), `D`, `k`.
//! Unknown packets get the standard empty reply.

use crate::adapter::NUM_REGS;
use crate::error::{Error, Result};
use crate::packet::{encode_packet, from_hex, parse_hex_u64, to_hex, Framer, Item};
use crate::target::{StopReason, Target, WatchKind};

/// Default step budget for `c`/`vCont;c`: a resume with no stop condition
/// terminates in bounded host time and reports `S02` (SIGINT), exactly as
/// if the user had interrupted a runaway program.
pub const DEFAULT_CONT_BUDGET: u64 = 10_000_000;

/// A live protocol session over a target.
#[derive(Debug)]
pub struct Session<T: Target> {
    target: T,
    framer: Framer,
    /// Acknowledgement mode: on until `QStartNoAckMode`.
    ack_mode: bool,
    /// Core selected by `Hg`/`Hc` (GDB threads are cores, ids `1..=n`).
    current_core: usize,
    /// Most recent stop, replayed by `?`.
    last_stop: Option<StopReason>,
    /// Step budget for continue operations.
    cont_budget: u64,
    /// Set once `k` or `D` is processed; the serve loop should hang up.
    finished: bool,
}

impl<T: Target> Session<T> {
    /// A session in initial state (ack mode on, core 0 selected).
    pub fn new(target: T) -> Self {
        Session {
            target,
            framer: Framer::new(),
            ack_mode: true,
            current_core: 0,
            last_stop: None,
            cont_budget: DEFAULT_CONT_BUDGET,
            finished: false,
        }
    }

    /// Overrides the continue step budget.
    pub fn set_cont_budget(&mut self, budget: u64) {
        self.cont_budget = budget.max(1);
    }

    /// The wrapped target.
    pub fn target(&self) -> &T {
        &self.target
    }

    /// The wrapped target, mutably.
    pub fn target_mut(&mut self) -> &mut T {
        &mut self.target
    }

    /// Whether the client detached or killed the session.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Consumes raw bytes from the transport, returns bytes to send back
    /// (acks plus reply packets).
    pub fn handle_bytes(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        for item in self.framer.push_bytes(bytes) {
            match item {
                Ok(Item::Packet(p)) => {
                    if self.ack_mode {
                        out.push(b'+');
                    }
                    // QStartNoAckMode: the *reply* is still acked; the mode
                    // flips for subsequent packets, which matches the spec
                    // because we ack before replying.
                    let reply = self.dispatch(&p);
                    if let Some(reply) = reply {
                        out.extend_from_slice(&encode_packet(&reply));
                    }
                }
                Ok(Item::Ack) | Ok(Item::Nak) => {
                    // We never retransmit: every reply is generated from
                    // target state that a retransmitted request would
                    // re-derive identically.
                }
                Ok(Item::Interrupt) => {
                    // Execution only happens synchronously inside `c`/`s`
                    // dispatch, so there is nothing to interrupt here.
                }
                Err(_) => {
                    if self.ack_mode {
                        out.push(b'-');
                    }
                }
            }
        }
        out
    }

    /// Handles one well-framed packet; `None` means "no reply" (only `k`).
    fn dispatch(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let text = String::from_utf8_lossy(packet).into_owned();
        let reply = match self.command(&text) {
            Ok(r) => r,
            // Error code E01: parse/target errors. GDB only displays the
            // two-digit code, so the detail also goes to the monitor
            // channel ("O" packets are only legal mid-qRcmd; keep it
            // simple and standard instead).
            Err(_) => Reply::Text("E01".into()),
        };
        match reply {
            Reply::Text(s) => Some(s.into_bytes()),
            Reply::Raw(b) => Some(b),
            Reply::None => None,
        }
    }

    fn command(&mut self, text: &str) -> Result<Reply> {
        let mut chars = text.chars();
        let head = chars.next().unwrap_or('\0');
        let rest = chars.as_str();
        Ok(match head {
            '?' => Reply::Text(self.stop_reply_text()),
            'g' => {
                let regs = self.target.read_registers(self.current_core)?;
                let mut bytes = Vec::with_capacity(regs.len() * 8);
                for r in regs {
                    bytes.extend_from_slice(&r.to_le_bytes());
                }
                Reply::Text(to_hex(&bytes))
            }
            'G' => {
                let bytes = from_hex(rest)?;
                if bytes.len() != NUM_REGS * 8 {
                    return Err(Error::Packet(format!(
                        "G wants {} bytes, got {}",
                        NUM_REGS * 8,
                        bytes.len()
                    )));
                }
                for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                    let v = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
                    self.target.write_register(self.current_core, i, v)?;
                }
                Reply::Text("OK".into())
            }
            'p' => {
                let n = parse_hex_u64(rest)? as usize;
                let regs = self.target.read_registers(self.current_core)?;
                let v = *regs
                    .get(n)
                    .ok_or_else(|| Error::Packet(format!("register {n} out of range")))?;
                Reply::Text(to_hex(&v.to_le_bytes()))
            }
            'P' => {
                let (n, val) = rest
                    .split_once('=')
                    .ok_or_else(|| Error::Packet("P wants n=value".into()))?;
                let n = parse_hex_u64(n)? as usize;
                let bytes = from_hex(val)?;
                if bytes.len() != 8 {
                    return Err(Error::Packet("P wants an 8-byte value".into()));
                }
                let v = u64::from_le_bytes(bytes.try_into().expect("checked length"));
                self.target.write_register(self.current_core, n, v)?;
                Reply::Text("OK".into())
            }
            'm' => {
                let (addr, len) = split_addr_len(rest)?;
                let words = self.target.read_mem(addr, len)?;
                let mut bytes = Vec::with_capacity(words.len() * 8);
                for w in words {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
                Reply::Text(to_hex(&bytes))
            }
            'M' => {
                let (head, data) = rest
                    .split_once(':')
                    .ok_or_else(|| Error::Packet("M wants addr,len:data".into()))?;
                let (addr, len) = split_addr_len(head)?;
                let bytes = from_hex(data)?;
                if bytes.len() != len as usize * 8 {
                    return Err(Error::Packet(format!(
                        "M wants {} data bytes, got {}",
                        len as usize * 8,
                        bytes.len()
                    )));
                }
                let words: Vec<u64> = bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
                    .collect();
                self.target.write_mem(addr, &words)?;
                Reply::Text("OK".into())
            }
            's' => {
                let stop = self.target.step()?;
                self.remember(stop)
            }
            'c' => {
                let stop = self.target.cont(self.cont_budget)?;
                self.remember(stop)
            }
            'v' => {
                if rest == "Cont?" {
                    Reply::Text("vCont;c;C;s;S".into())
                } else if let Some(actions) = rest.strip_prefix("Cont;") {
                    let first = actions.split(';').next().unwrap_or("");
                    let letter = first.chars().next().unwrap_or('c');
                    let stop = match letter {
                        's' | 'S' => self.target.step()?,
                        _ => self.target.cont(self.cont_budget)?,
                    };
                    self.remember(stop)
                } else {
                    Reply::Text(String::new())
                }
            }
            'H' => {
                // Hc/Hg<tid>: select the core later register/memory
                // operations address. tid 0 ("any") and -1 ("all") keep
                // the current selection.
                let tid = rest.get(1..).unwrap_or("");
                if tid != "-1" && tid != "0" && !tid.is_empty() {
                    let id = parse_hex_u64(tid)? as usize;
                    if id < 1 || id > self.target.num_cores() {
                        return Err(Error::Packet(format!("no thread {id}")));
                    }
                    self.current_core = id - 1;
                }
                Reply::Text("OK".into())
            }
            'T' => {
                let id = parse_hex_u64(rest)? as usize;
                if id >= 1 && id <= self.target.num_cores() {
                    Reply::Text("OK".into())
                } else {
                    Reply::Text("E01".into())
                }
            }
            'Z' | 'z' => self.z_packet(head == 'Z', rest)?,
            'q' => self.query(rest)?,
            'Q' => {
                if rest == "StartNoAckMode" {
                    self.ack_mode = false;
                    Reply::Text("OK".into())
                } else {
                    Reply::Text(String::new())
                }
            }
            'D' => {
                self.finished = true;
                Reply::Text("OK".into())
            }
            'k' => {
                self.finished = true;
                Reply::None
            }
            _ => Reply::Text(String::new()),
        })
    }

    fn z_packet(&mut self, insert: bool, rest: &str) -> Result<Reply> {
        let mut parts = rest.split(',');
        let (ty, addr, len) = match (parts.next(), parts.next(), parts.next()) {
            (Some(t), Some(a), Some(l)) => (t, parse_hex_u64(a)? as u32, parse_hex_u64(l)? as u32),
            _ => return Err(Error::Packet("Z/z wants type,addr,kind".into())),
        };
        match ty {
            // Software and "hardware" breakpoints are the same thing on a
            // simulated platform: a pc match with zero overhead.
            "0" | "1" => {
                if insert {
                    self.target.insert_breakpoint(addr)?;
                } else {
                    self.target.remove_breakpoint(addr)?;
                }
            }
            "2" | "3" | "4" => {
                let kind = match ty {
                    "2" => WatchKind::Write,
                    "3" => WatchKind::Read,
                    _ => WatchKind::Access,
                };
                if insert {
                    self.target.insert_watchpoint(kind, addr, len.max(1))?;
                } else {
                    self.target.remove_watchpoint(kind, addr, len.max(1))?;
                }
            }
            _ => return Ok(Reply::Text(String::new())),
        }
        Ok(Reply::Text("OK".into()))
    }

    fn query(&mut self, rest: &str) -> Result<Reply> {
        if let Some(args) = rest.strip_prefix("Supported") {
            let _ = args; // feature probes are informational
            return Ok(Reply::Text(
                "PacketSize=16384;QStartNoAckMode+;swbreak+;hwbreak+;vContSupported+".into(),
            ));
        }
        if rest == "C" {
            return Ok(Reply::Text(format!("QC{:x}", self.current_core + 1)));
        }
        if rest == "fThreadInfo" {
            let ids: Vec<String> = (1..=self.target.num_cores())
                .map(|id| format!("{id:x}"))
                .collect();
            return Ok(Reply::Text(format!("m{}", ids.join(","))));
        }
        if rest == "sThreadInfo" {
            return Ok(Reply::Text("l".into()));
        }
        if rest == "Attached" {
            return Ok(Reply::Text("1".into()));
        }
        if let Some(hex) = rest.strip_prefix("Rcmd,") {
            let cmd_bytes = from_hex(hex)?;
            let cmd = String::from_utf8_lossy(&cmd_bytes).into_owned();
            return Ok(match self.target.monitor(cmd.trim()) {
                Ok(out) if out.is_empty() => Reply::Text("OK".into()),
                Ok(out) => Reply::Text(to_hex(out.as_bytes())),
                // Monitor errors carry human-readable detail; report it as
                // console text rather than a bare E-code.
                Err(e) => Reply::Text(to_hex(format!("error: {e}\n").as_bytes())),
            });
        }
        Ok(Reply::Text(String::new()))
    }

    fn remember(&mut self, stop: StopReason) -> Reply {
        self.last_stop = Some(stop);
        Reply::Text(self.stop_reply_text())
    }

    /// Renders the last stop as an RSP stop reply.
    fn stop_reply_text(&self) -> String {
        match &self.last_stop {
            None | Some(StopReason::Step) => "S05".into(),
            Some(StopReason::Breakpoint { core, .. }) => {
                format!("T05swbreak:;thread:{:x};", core + 1)
            }
            Some(StopReason::Watch { kind, addr }) => {
                let key = match kind {
                    WatchKind::Write => "watch",
                    WatchKind::Read => "rwatch",
                    WatchKind::Access => "awatch",
                };
                format!("T05{key}:{addr:x};thread:{:x};", self.current_core + 1)
            }
            // A signal watchpoint has no data address; plain SIGTRAP with
            // the detail available via `monitor where`.
            Some(StopReason::SignalWatch { .. }) => "S05".into(),
            Some(StopReason::Exited) => "W00".into(),
            Some(StopReason::Budget) => "S02".into(),
            Some(StopReason::Fault(_)) => "S0b".into(),
        }
    }
}

/// A dispatch result: a textual reply, raw bytes, or silence (`k`).
enum Reply {
    Text(String),
    #[allow(dead_code)] // reserved for binary replies (e.g. qXfer)
    Raw(Vec<u8>),
    None,
}

/// Parses the `addr,len` argument form (both big-endian hex).
fn split_addr_len(s: &str) -> Result<(u32, u32)> {
    let (a, l) = s
        .split_once(',')
        .ok_or_else(|| Error::Packet(format!("expected addr,len in {s:?}")))?;
    Ok((parse_hex_u64(a)? as u32, parse_hex_u64(l)? as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::DebugTarget;
    use mpsoc_platform::isa::assemble;
    use mpsoc_platform::platform::PlatformBuilder;
    use mpsoc_platform::Frequency;
    use mpsoc_vpdebug::Debugger;

    fn session() -> Session<DebugTarget> {
        let mut p = PlatformBuilder::new()
            .cores(2, Frequency::mhz(100))
            .shared_words(512)
            .cache(None)
            .build()
            .unwrap();
        let prog = assemble(
            "movi r1, 0\nmovi r3, 10\nloop: addi r1, r1, 1\n\
             movi r2, 0x40\nst r1, r2, 0\nblt r1, r3, loop\nhalt",
        )
        .unwrap();
        p.load_program(0, prog, 0).unwrap();
        Session::new(DebugTarget::new(Debugger::new(p)))
    }

    /// Sends one command packet and returns the decoded reply payload.
    fn roundtrip(s: &mut Session<DebugTarget>, cmd: &str) -> String {
        let wire = encode_packet(cmd.as_bytes());
        let out = s.handle_bytes(&wire);
        // Strip the leading ack if present, then parse the reply packet.
        let body = if out.first() == Some(&b'+') {
            &out[1..]
        } else {
            &out[..]
        };
        let mut f = Framer::new();
        for item in f.push_bytes(body) {
            if let Ok(Item::Packet(p)) = item {
                return String::from_utf8_lossy(&p).into_owned();
            }
        }
        String::new()
    }

    #[test]
    fn query_handshake() {
        let mut s = session();
        assert!(roundtrip(&mut s, "qSupported:swbreak+").contains("QStartNoAckMode+"));
        assert_eq!(roundtrip(&mut s, "?"), "S05");
        assert_eq!(roundtrip(&mut s, "qC"), "QC1");
        assert_eq!(roundtrip(&mut s, "qfThreadInfo"), "m1,2");
        assert_eq!(roundtrip(&mut s, "qsThreadInfo"), "l");
        assert_eq!(roundtrip(&mut s, "T1"), "OK");
        assert_eq!(roundtrip(&mut s, "T9"), "E01");
    }

    #[test]
    fn no_ack_mode_drops_acks() {
        let mut s = session();
        assert_eq!(roundtrip(&mut s, "QStartNoAckMode"), "OK");
        let out = s.handle_bytes(&encode_packet(b"?"));
        assert_ne!(out.first(), Some(&b'+'), "no ack after QStartNoAckMode");
    }

    #[test]
    fn register_read_write_via_packets() {
        let mut s = session();
        let g = roundtrip(&mut s, "g");
        assert_eq!(g.len(), NUM_REGS * 16);
        // P5=<0xbeef LE> then p5 reads it back.
        let val_hex = to_hex(&0xbeefu64.to_le_bytes());
        assert_eq!(roundtrip(&mut s, &format!("P5={val_hex}")), "OK");
        assert_eq!(roundtrip(&mut s, "p5"), val_hex);
        // Register reflected in the debugger itself.
        let r5 = s
            .target()
            .debugger()
            .core_regs(0)
            .unwrap()
            .reg(mpsoc_platform::isa::Reg::new(5));
        assert_eq!(r5, 0xbeef);
    }

    #[test]
    fn memory_read_write_via_packets() {
        let mut s = session();
        let data = to_hex(
            &[7u64, 8, 9]
                .iter()
                .flat_map(|w| w.to_le_bytes())
                .collect::<Vec<u8>>(),
        );
        assert_eq!(roundtrip(&mut s, &format!("M30,3:{data}")), "OK");
        assert_eq!(roundtrip(&mut s, "m30,3"), data);
        assert_eq!(roundtrip(&mut s, "m30,2"), data[..32]);
        // Unmapped memory is an error, not a crash.
        assert_eq!(roundtrip(&mut s, "mffff0000,1"), "E01");
    }

    #[test]
    fn breakpoint_continue_hit_and_exit() {
        let mut s = session();
        assert_eq!(roundtrip(&mut s, "Z0,2,4"), "OK");
        assert_eq!(roundtrip(&mut s, "c"), "T05swbreak:;thread:1;");
        assert_eq!(roundtrip(&mut s, "z0,2,4"), "OK");
        assert_eq!(roundtrip(&mut s, "c"), "W00");
    }

    #[test]
    fn watchpoint_stop_reports_address() {
        let mut s = session();
        assert_eq!(roundtrip(&mut s, "Z2,40,1"), "OK");
        assert_eq!(roundtrip(&mut s, "vCont;c"), "T05watch:40;thread:1;");
        assert_eq!(roundtrip(&mut s, "z2,40,1"), "OK");
    }

    #[test]
    fn step_returns_stop_reply() {
        let mut s = session();
        assert_eq!(roundtrip(&mut s, "s"), "S05");
        assert_eq!(roundtrip(&mut s, "vCont;s:1"), "S05");
    }

    #[test]
    fn monitor_via_qrcmd() {
        let mut s = session();
        let cmd = to_hex(b"where");
        let reply = roundtrip(&mut s, &format!("qRcmd,{cmd}"));
        let text = String::from_utf8(from_hex(&reply).unwrap()).unwrap();
        assert!(text.contains("step 0"), "{text}");
        // Unknown commands come back as readable error text.
        let bad = to_hex(b"nonsense");
        let reply = roundtrip(&mut s, &format!("qRcmd,{bad}"));
        let text = String::from_utf8(from_hex(&reply).unwrap()).unwrap();
        assert!(text.starts_with("error:"), "{text}");
    }

    #[test]
    fn thread_select_switches_core() {
        let mut s = session();
        assert_eq!(roundtrip(&mut s, "Hg2"), "OK");
        let g = roundtrip(&mut s, "g");
        // Core 1 has no program: pc 0, all registers 0.
        assert_eq!(g, "0".repeat(NUM_REGS * 16));
        assert_eq!(roundtrip(&mut s, "Hg9"), "E01");
    }

    #[test]
    fn detach_and_kill_finish_session() {
        let mut s = session();
        assert_eq!(roundtrip(&mut s, "D"), "OK");
        assert!(s.finished());
        let mut s = session();
        let out = s.handle_bytes(&encode_packet(b"k"));
        assert_eq!(out, b"+", "k is acked but gets no reply");
        assert!(s.finished());
    }

    #[test]
    fn corrupt_packet_gets_nak_and_session_survives() {
        let mut s = session();
        let out = s.handle_bytes(b"$g#00");
        assert_eq!(out, b"-");
        assert_eq!(roundtrip(&mut s, "?"), "S05");
    }
}
