//! GDB Remote Serial Protocol packet framing.
//!
//! The wire format is `$<payload>#<checksum>` where the checksum is the
//! modulo-256 sum of the payload bytes *as transmitted*, written as two
//! lowercase hex digits. Payload bytes that collide with the framing
//! characters (`$`, `#`, the escape byte `}` = 0x7d, and the run-length
//! marker `*`) are escaped as `0x7d` followed by the byte XOR 0x20.
//! A receiver acknowledges every well-formed packet with `+` and requests
//! retransmission of a corrupt one with `-` (until
//! `QStartNoAckMode` turns acknowledgements off).
//!
//! [`Framer`] is an incremental parser: feed it bytes as they arrive and
//! it emits complete [`Item`]s. It never panics on hostile input — corrupt
//! checksums, truncated escapes, and oversized payloads surface as
//! [`Error::Frame`] values and the framer resynchronises on the next `$`.

use crate::error::{Error, Result};

/// Upper bound on a single packet's (escaped) payload size. Real GDB
/// negotiates ~16 KiB via `PacketSize`; anything past this limit is a
/// protocol violation or an attack, and is rejected without buffering.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// The RSP escape byte.
const ESCAPE: u8 = 0x7d;
/// GDB's Ctrl-C interrupt, sent outside any packet.
const INTERRUPT: u8 = 0x03;

/// One framed protocol element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// A complete, checksum-verified packet payload (unescaped).
    Packet(Vec<u8>),
    /// A `+` acknowledgement.
    Ack,
    /// A `-` retransmission request.
    Nak,
    /// An out-of-band interrupt (0x03).
    Interrupt,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Between packets; `+`/`-`/0x03 are meaningful, other bytes noise.
    Idle,
    /// Inside `$...`, accumulating payload bytes.
    Payload,
    /// Seen `#`, waiting for the first checksum digit.
    Csum0,
    /// First checksum digit in hand, waiting for the second.
    Csum1(u8),
}

/// Incremental RSP frame parser.
#[derive(Debug)]
pub struct Framer {
    state: State,
    /// Raw (still escaped) payload bytes of the in-flight packet.
    raw: Vec<u8>,
    /// Running modulo-256 sum of the raw payload bytes.
    sum: u8,
}

impl Framer {
    /// A framer in the idle state.
    pub fn new() -> Self {
        Framer {
            state: State::Idle,
            raw: Vec::new(),
            sum: 0,
        }
    }

    /// Feeds one byte; returns a completed item or error, if this byte
    /// finished one. Errors reset the framer to idle — parsing resumes at
    /// the next `$`.
    pub fn push(&mut self, byte: u8) -> Option<Result<Item>> {
        match self.state {
            State::Idle => match byte {
                b'+' => Some(Ok(Item::Ack)),
                b'-' => Some(Ok(Item::Nak)),
                INTERRUPT => Some(Ok(Item::Interrupt)),
                b'$' => {
                    self.state = State::Payload;
                    self.raw.clear();
                    self.sum = 0;
                    None
                }
                // Line noise between packets is explicitly tolerated.
                _ => None,
            },
            State::Payload => match byte {
                b'#' => {
                    self.state = State::Csum0;
                    None
                }
                b'$' => {
                    // A packet restarted mid-flight: drop the partial one.
                    self.raw.clear();
                    self.sum = 0;
                    None
                }
                _ => {
                    if self.raw.len() >= MAX_PAYLOAD {
                        self.state = State::Idle;
                        return Some(Err(Error::Frame(format!(
                            "payload exceeds {MAX_PAYLOAD} bytes"
                        ))));
                    }
                    self.raw.push(byte);
                    self.sum = self.sum.wrapping_add(byte);
                    None
                }
            },
            State::Csum0 => match hex_val(byte) {
                Some(hi) => {
                    self.state = State::Csum1(hi);
                    None
                }
                None => {
                    self.state = State::Idle;
                    Some(Err(Error::Frame(format!(
                        "non-hex checksum digit {byte:#04x}"
                    ))))
                }
            },
            State::Csum1(hi) => {
                self.state = State::Idle;
                let Some(lo) = hex_val(byte) else {
                    return Some(Err(Error::Frame(format!(
                        "non-hex checksum digit {byte:#04x}"
                    ))));
                };
                let expect = hi * 16 + lo;
                if expect != self.sum {
                    return Some(Err(Error::Frame(format!(
                        "checksum mismatch: packet says {expect:#04x}, computed {:#04x}",
                        self.sum
                    ))));
                }
                Some(unescape(&self.raw).map(Item::Packet))
            }
        }
    }

    /// Feeds a byte slice; returns every item (or error) completed by it.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Vec<Result<Item>> {
        bytes.iter().filter_map(|&b| self.push(b)).collect()
    }

    /// Whether the framer is mid-packet (bytes are buffered).
    pub fn mid_packet(&self) -> bool {
        self.state != State::Idle
    }
}

impl Default for Framer {
    fn default() -> Self {
        Framer::new()
    }
}

/// Removes RSP escapes. Fails on a trailing escape byte (the escaped byte
/// never arrived — a truncation the checksum cannot catch when the
/// truncated form happens to re-frame).
fn unescape(raw: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == ESCAPE {
            let Some(&next) = raw.get(i + 1) else {
                return Err(Error::Frame("trailing escape byte".into()));
            };
            out.push(next ^ 0x20);
            i += 2;
        } else {
            out.push(raw[i]);
            i += 1;
        }
    }
    Ok(out)
}

/// Frames `payload` into a transmit-ready `$...#xx` byte vector, escaping
/// where required.
pub fn encode_packet(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.push(b'$');
    let mut sum = 0u8;
    for &b in payload {
        if matches!(b, b'$' | b'#' | b'*' | ESCAPE) {
            let esc = b ^ 0x20;
            out.push(ESCAPE);
            out.push(esc);
            sum = sum.wrapping_add(ESCAPE).wrapping_add(esc);
        } else {
            out.push(b);
            sum = sum.wrapping_add(b);
        }
    }
    out.push(b'#');
    out.push(hex_digit(sum >> 4));
    out.push(hex_digit(sum & 0xf));
    out
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

fn hex_digit(v: u8) -> u8 {
    debug_assert!(v < 16);
    if v < 10 {
        b'0' + v
    } else {
        b'a' + v - 10
    }
}

/// Hex-encodes bytes (lowercase), the RSP convention for binary payloads
/// such as `qRcmd` command text and console output.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(hex_digit(b >> 4) as char);
        s.push(hex_digit(b & 0xf) as char);
    }
    s
}

/// Decodes an even-length hex string into bytes.
///
/// # Errors
///
/// [`Error::Packet`] on odd length or a non-hex digit.
pub fn from_hex(s: &str) -> Result<Vec<u8>> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return Err(Error::Packet(format!(
            "odd-length hex string ({})",
            b.len()
        )));
    }
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        let (hi, lo) = (hex_val(pair[0]), hex_val(pair[1]));
        match (hi, lo) {
            (Some(h), Some(l)) => out.push(h * 16 + l),
            _ => {
                return Err(Error::Packet(format!(
                    "non-hex byte pair {:?}",
                    String::from_utf8_lossy(pair)
                )))
            }
        }
    }
    Ok(out)
}

/// Parses a big-endian hex number (the RSP address/length convention).
///
/// # Errors
///
/// [`Error::Packet`] on empty input, a non-hex digit, or overflow past 64
/// bits.
pub fn parse_hex_u64(s: &str) -> Result<u64> {
    if s.is_empty() {
        return Err(Error::Packet("empty hex number".into()));
    }
    if s.len() > 16 {
        return Err(Error::Packet(format!("hex number too wide: {s:?}")));
    }
    let mut v = 0u64;
    for &b in s.as_bytes() {
        let d = hex_val(b).ok_or_else(|| Error::Packet(format!("non-hex digit in {s:?}")))?;
        v = (v << 4) | u64::from(d);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_packet(bytes: &[u8]) -> Item {
        let mut f = Framer::new();
        let items: Vec<_> = f.push_bytes(bytes).into_iter().collect();
        assert_eq!(items.len(), 1, "expected one item from {bytes:?}");
        items.into_iter().next().unwrap().expect("well-formed")
    }

    #[test]
    fn round_trips_plain_payload() {
        let wire = encode_packet(b"g");
        assert_eq!(wire, b"$g#67");
        assert_eq!(one_packet(&wire), Item::Packet(b"g".to_vec()));
    }

    #[test]
    fn round_trips_every_byte_value() {
        let payload: Vec<u8> = (0u8..=255).collect();
        let wire = encode_packet(&payload);
        assert_eq!(one_packet(&wire), Item::Packet(payload));
    }

    #[test]
    fn acks_naks_and_interrupts_pass_through() {
        let mut f = Framer::new();
        let items: Vec<_> = f
            .push_bytes(b"+-\x03")
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(items, vec![Item::Ack, Item::Nak, Item::Interrupt]);
    }

    #[test]
    fn bad_checksum_is_an_error_then_recovers() {
        let mut f = Framer::new();
        let items = f.push_bytes(b"$g#00$g#67");
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0], Err(Error::Frame(_))));
        assert_eq!(items[1].clone().unwrap(), Item::Packet(b"g".to_vec()));
    }

    #[test]
    fn noise_between_packets_is_ignored() {
        let mut f = Framer::new();
        let items = f.push_bytes(b"\r\nhello$?#3f");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].clone().unwrap(), Item::Packet(b"?".to_vec()));
    }

    #[test]
    fn restarted_packet_drops_partial() {
        let mut f = Framer::new();
        let items = f.push_bytes(b"$mAAAA$g#67");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].clone().unwrap(), Item::Packet(b"g".to_vec()));
    }

    #[test]
    fn hex_helpers_round_trip() {
        assert_eq!(to_hex(b"monitor"), "6d6f6e69746f72");
        assert_eq!(from_hex("6d6f6e69746f72").unwrap(), b"monitor".to_vec());
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
        assert_eq!(parse_hex_u64("dead").unwrap(), 0xdead);
        assert!(parse_hex_u64("").is_err());
        assert!(parse_hex_u64("11112222333344445").is_err());
    }
}
