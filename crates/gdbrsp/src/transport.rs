//! Byte transports for the RSP session: TCP for real debuggers, an
//! in-memory duplex pipe for deterministic tests.
//!
//! The session itself is transport-free ([`crate::session`]); everything
//! here just moves bytes. [`serve`] is the generic pump loop:
//! read → [`Session::handle_bytes`] → write, until the peer hangs up or
//! the client detaches.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::{Error, Result};
use crate::packet::{encode_packet, Framer, Item};
use crate::session::Session;
use crate::target::Target;

/// A blocking byte pipe.
pub trait Transport {
    /// Reads at least one byte (blocking); `Ok(0)` means the peer closed.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on transport failure.
    fn read(&mut self, buf: &mut [u8]) -> Result<usize>;

    /// Writes every byte.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on transport failure.
    fn write_all(&mut self, bytes: &[u8]) -> Result<()>;
}

/// Pumps a session over a transport until the client detaches (`D`), kills
/// (`k`), or hangs up.
///
/// # Errors
///
/// [`Error::Io`] on transport failure; a clean hang-up is `Ok`.
pub fn serve<T: Target, P: Transport>(session: &mut Session<T>, transport: &mut P) -> Result<()> {
    let mut buf = [0u8; 4096];
    loop {
        let n = transport.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        let out = session.handle_bytes(&buf[..n]);
        if !out.is_empty() {
            transport.write_all(&out)?;
        }
        if session.finished() {
            return Ok(());
        }
    }
}

/// TCP transport (one GDB connection).
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream. `TCP_NODELAY` is enabled — RSP is a
    /// ping-pong protocol and Nagle ruins its latency.
    pub fn new(stream: TcpStream) -> Self {
        let _ = stream.set_nodelay(true);
        TcpTransport { stream }
    }
}

impl Transport for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        Ok(self.stream.read(buf)?)
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<()> {
        Ok(self.stream.write_all(bytes)?)
    }
}

/// A TCP server that accepts GDB connections and serves each one to
/// completion, sequentially.
#[derive(Debug)]
pub struct GdbServer {
    listener: TcpListener,
}

impl GdbServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the bind fails.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        Ok(GdbServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address, e.g. to print `target remote <addr>`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the socket is gone.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts one connection and serves it until the debugger detaches.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on accept or transport failure.
    pub fn serve_one<T: Target>(&self, session: &mut Session<T>) -> Result<()> {
        let (stream, _) = self.listener.accept()?;
        let mut transport = TcpTransport::new(stream);
        serve(session, &mut transport)
    }
}

/// Shared half-duplex byte queue with close tracking.
#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn write(&self, bytes: &[u8]) -> Result<()> {
        let mut st = self.state.lock().expect("pipe lock");
        if st.closed {
            return Err(Error::Io("pipe closed".into()));
        }
        st.buf.extend(bytes);
        self.readable.notify_all();
        Ok(())
    }

    fn read(&self, buf: &mut [u8]) -> Result<usize> {
        let mut st = self.state.lock().expect("pipe lock");
        while st.buf.is_empty() {
            if st.closed {
                return Ok(0);
            }
            st = self.readable.wait(st).expect("pipe wait");
        }
        let n = buf.len().min(st.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = st.buf.pop_front().expect("checked non-empty");
        }
        Ok(n)
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("pipe lock");
        st.closed = true;
        self.readable.notify_all();
    }
}

/// One end of an in-memory duplex byte pipe (the no-socket transport the
/// protocol tests run the full serve loop over).
#[derive(Debug)]
pub struct DuplexEnd {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

impl Transport for DuplexEnd {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.rx.read(buf)
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<()> {
        self.tx.write(bytes)
    }
}

impl Drop for DuplexEnd {
    fn drop(&mut self) {
        // Closing both directions wakes a peer blocked in read().
        self.tx.close();
        self.rx.close();
    }
}

/// An in-memory duplex pipe pair: what one end writes, the other reads.
pub fn duplex_pair() -> (DuplexEnd, DuplexEnd) {
    let a = Arc::new(Pipe::default());
    let b = Arc::new(Pipe::default());
    (
        DuplexEnd {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        DuplexEnd { rx: b, tx: a },
    )
}

/// A minimal RSP *client* — the test-side stand-in for GDB. Sends command
/// packets, consumes acks, returns decoded reply payloads.
#[derive(Debug)]
pub struct RspClient<P: Transport> {
    transport: P,
    framer: Framer,
    pending: VecDeque<Item>,
}

impl<P: Transport> RspClient<P> {
    /// Wraps a transport.
    pub fn new(transport: P) -> Self {
        RspClient {
            transport,
            framer: Framer::new(),
            pending: VecDeque::new(),
        }
    }

    /// Sends `cmd` as a packet and returns the reply payload as text.
    /// Acks from the server are consumed transparently.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the server hangs up before replying;
    /// [`Error::Frame`] on a corrupt reply.
    pub fn command(&mut self, cmd: &str) -> Result<String> {
        self.transport.write_all(&encode_packet(cmd.as_bytes()))?;
        loop {
            match self.next_item()? {
                Item::Packet(p) => {
                    // Ack the reply, best-effort: harmless in no-ack mode,
                    // and after a `D`/`k` reply the server may already
                    // have hung up.
                    let _ = self.transport.write_all(b"+");
                    return Ok(String::from_utf8_lossy(&p).into_owned());
                }
                Item::Ack | Item::Nak | Item::Interrupt => continue,
            }
        }
    }

    /// Sends a packet that gets no reply (only `k`).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on transport failure.
    pub fn command_no_reply(&mut self, cmd: &str) -> Result<()> {
        self.transport.write_all(&encode_packet(cmd.as_bytes()))?;
        Ok(())
    }

    fn next_item(&mut self) -> Result<Item> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Ok(item);
            }
            let mut buf = [0u8; 4096];
            let n = self.transport.read(&mut buf)?;
            if n == 0 {
                return Err(Error::Io("server hung up".into()));
            }
            for item in self.framer.push_bytes(&buf[..n]) {
                self.pending.push_back(item?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::DebugTarget;
    use mpsoc_platform::isa::assemble;
    use mpsoc_platform::platform::PlatformBuilder;
    use mpsoc_platform::Frequency;
    use mpsoc_vpdebug::Debugger;

    fn target() -> DebugTarget {
        let mut p = PlatformBuilder::new()
            .cores(1, Frequency::mhz(100))
            .shared_words(256)
            .cache(None)
            .build()
            .unwrap();
        let prog = assemble("movi r1, 7\nmovi r2, 0x30\nst r1, r2, 0\nhalt").unwrap();
        p.load_program(0, prog, 0).unwrap();
        DebugTarget::new(Debugger::new(p))
    }

    #[test]
    fn duplex_serve_loop_full_protocol() {
        let (server_end, client_end) = duplex_pair();
        let handle = std::thread::spawn(move || {
            let mut session = Session::new(target());
            let mut t = server_end;
            serve(&mut session, &mut t).expect("serve loop");
        });
        let mut client = RspClient::new(client_end);
        assert!(client.command("qSupported").unwrap().contains("PacketSize"));
        assert_eq!(client.command("QStartNoAckMode").unwrap(), "OK");
        assert_eq!(client.command("?").unwrap(), "S05");
        assert_eq!(client.command("c").unwrap(), "W00");
        // Memory observable after the run.
        let m = client.command("m30,1").unwrap();
        assert_eq!(m, crate::packet::to_hex(&7u64.to_le_bytes()));
        assert_eq!(client.command("D").unwrap(), "OK");
        handle.join().expect("server thread");
    }

    #[test]
    fn tcp_round_trip_when_loopback_available() {
        // Loopback sockets can be unavailable in sandboxes; skip (with a
        // note) rather than fail — the duplex test covers the protocol.
        let server = match GdbServer::bind(("127.0.0.1", 0)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping TCP transport test: {e}");
                return;
            }
        };
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut session = Session::new(target());
            server.serve_one(&mut session).expect("tcp serve");
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = RspClient::new(TcpTransport::new(stream));
        assert_eq!(client.command("?").unwrap(), "S05");
        assert_eq!(client.command("c").unwrap(), "W00");
        client.command_no_reply("k").unwrap();
        handle.join().expect("server thread");
    }
}
