//! # mpsoc-gdbrsp — GDB Remote Serial Protocol server for the virtual platform
//!
//! Section VII of the paper makes virtual-platform debugging the payoff of
//! MPSoC simulation; this crate gives the [`mpsoc_vpdebug`] layer a wire
//! protocol, so a stock `gdb` (or anything speaking RSP) can attach to a
//! simulated platform, inspect every core, set breakpoints and
//! watchpoints — and drive the capabilities GDB has no verbs for
//! (time travel, checkpoints, stimulus recording) through `monitor`
//! commands.
//!
//! The protocol is hand-rolled: RSP is a line-of-text protocol
//! (`$payload#checksum`), and the suite's build is hermetic — zero
//! external dependencies.
//!
//! ## Layers
//!
//! * [`packet`] — framing: checksums, escapes, acks, an incremental
//!   [`Framer`] that never panics on hostile bytes.
//! * [`target`] — the [`Target`] trait: the flat debug surface the
//!   session drives. The headless test runner (`mpsoc-test` in
//!   `mpsoc-apps`) drives the *same* trait, so scripted CI scenarios and
//!   live debugger attaches exercise one code path.
//! * [`adapter`] — [`DebugTarget`]: [`Target`] over a
//!   [`Debugger`](mpsoc_vpdebug::Debugger).
//! * [`session`] — the packet dispatcher ([`Session`]).
//! * [`transport`] — TCP ([`GdbServer`]) and an in-memory duplex pipe
//!   ([`duplex_pair`]) for socket-free protocol tests, plus the
//!   [`RspClient`] test client.
//!
//! ## A session, end to end
//!
//! ```
//! use mpsoc_gdbrsp::{duplex_pair, serve, DebugTarget, RspClient, Session};
//! use mpsoc_platform::isa::assemble;
//! use mpsoc_platform::platform::PlatformBuilder;
//! use mpsoc_platform::Frequency;
//! use mpsoc_vpdebug::Debugger;
//!
//! let mut p = PlatformBuilder::new()
//!     .cores(1, Frequency::mhz(100))
//!     .shared_words(256)
//!     .cache(None)
//!     .build()
//!     .unwrap();
//! p.load_program(0, assemble("movi r1, 7\nhalt").unwrap(), 0).unwrap();
//!
//! let (server_end, client_end) = duplex_pair();
//! let server = std::thread::spawn(move || {
//!     let mut session = Session::new(DebugTarget::new(Debugger::new(p)));
//!     let mut end = server_end;
//!     serve(&mut session, &mut end).unwrap();
//! });
//! let mut gdb = RspClient::new(client_end);
//! assert_eq!(gdb.command("?").unwrap(), "S05");
//! assert_eq!(gdb.command("c").unwrap(), "W00"); // ran to completion
//! assert_eq!(gdb.command("D").unwrap(), "OK");
//! server.join().unwrap();
//! ```

#![warn(missing_docs)]

pub mod adapter;
pub mod error;
pub mod packet;
pub mod session;
pub mod target;
pub mod transport;

pub use crate::adapter::{DebugTarget, NUM_REGS, PC_REG};
pub use crate::error::{Error, Result};
pub use crate::packet::{encode_packet, Framer, Item};
pub use crate::session::{Session, DEFAULT_CONT_BUDGET};
pub use crate::target::{StopReason, Target, WatchKind};
pub use crate::transport::{
    duplex_pair, serve, DuplexEnd, GdbServer, RspClient, TcpTransport, Transport,
};
