//! GDB-RSP server error type.

use std::fmt;

/// Errors raised by the RSP framing layer, the protocol session, or the
/// target adapter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A malformed frame: bad checksum, truncated escape, oversized
    /// payload, or a non-hex checksum digit.
    Frame(String),
    /// A well-framed packet whose body could not be parsed (bad hex, a
    /// missing field, an out-of-range register number, …).
    Packet(String),
    /// The target rejected an operation (bad core id, unmapped address,
    /// time travel disabled, …).
    Target(String),
    /// Transport-level I/O failure.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Frame(m) => write!(f, "frame: {m}"),
            Error::Packet(m) => write!(f, "packet: {m}"),
            Error::Target(m) => write!(f, "target: {m}"),
            Error::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<mpsoc_vpdebug::Error> for Error {
    fn from(e: mpsoc_vpdebug::Error) -> Self {
        Error::Target(e.to_string())
    }
}

impl From<mpsoc_platform::Error> for Error {
    fn from(e: mpsoc_platform::Error) -> Self {
        Error::Target(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;
