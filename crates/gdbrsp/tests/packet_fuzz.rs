//! Seeded fuzz properties for the RSP packet framing layer.
//!
//! Mirrors the platform snapshot layer's corrupt-token fuzz test
//! (`corrupted_delta_tokens_never_panic`): hostile bytes must surface as
//! clean errors, never as panics — and the framer must resynchronise, so
//! one corrupt packet cannot wedge the debug link.

use mpsoc_gdbrsp::packet::{encode_packet, Framer, Item, MAX_PAYLOAD};
use mpsoc_obs::rng::XorShift64Star;

/// Parses a byte stream to completion, separating packets from errors.
fn drain(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut f = Framer::new();
    let mut packets = Vec::new();
    let mut errors = 0;
    for item in f.push_bytes(bytes) {
        match item {
            Ok(Item::Packet(p)) => packets.push(p),
            Ok(_) => {}
            Err(_) => errors += 1,
        }
    }
    (packets, errors)
}

/// A seeded payload mixing plain bytes with every byte the protocol must
/// escape (`$`, `#`, `}`, `*`) and raw binary.
fn random_payload(rng: &mut XorShift64Star) -> Vec<u8> {
    let len = rng.usize_in(0, 64);
    (0..len)
        .map(|_| match rng.usize_in(0, 9) {
            0 => 0x24, // $
            1 => 0x23, // #
            2 => 0x7d, // } — the escape byte itself
            3 => 0x2a, // *
            _ => rng.u64_in(0, 255) as u8,
        })
        .collect()
}

#[test]
fn random_payloads_round_trip() {
    let mut rng = XorShift64Star::new(0x5eed_0001);
    for _ in 0..500 {
        let payload = random_payload(&mut rng);
        let wire = encode_packet(&payload);
        let (packets, errors) = drain(&wire);
        assert_eq!(errors, 0);
        assert_eq!(packets, vec![payload]);
    }
}

#[test]
fn corrupt_checksums_error_cleanly_and_recover() {
    let mut rng = XorShift64Star::new(0x5eed_0002);
    for _ in 0..500 {
        let payload = random_payload(&mut rng);
        let mut wire = encode_packet(&payload);
        // Corrupt one byte anywhere in the frame.
        let idx = rng.usize_in(0, wire.len() - 1);
        let flip = 1u8 << rng.usize_in(0, 7);
        wire[idx] ^= flip;
        // Append a known-good packet: the framer must recover and parse it.
        wire.extend_from_slice(&encode_packet(b"recovery"));
        let (packets, _) = drain(&wire);
        assert_eq!(
            packets.last().map(Vec::as_slice),
            Some(&b"recovery"[..]),
            "framer failed to resynchronise after corrupting byte {idx}"
        );
    }
}

#[test]
fn truncated_packets_never_panic() {
    let mut rng = XorShift64Star::new(0x5eed_0003);
    for _ in 0..500 {
        let payload = random_payload(&mut rng);
        let wire = encode_packet(&payload);
        let cut = rng.usize_in(0, wire.len());
        let mut bytes = wire[..cut].to_vec();
        bytes.extend_from_slice(&encode_packet(b"after"));
        // Must not panic; the trailing good packet parses unless the cut
        // left the framer mid-packet swallowing it as payload — in which
        // case a later flush still must not panic.
        let _ = drain(&bytes);
    }
}

#[test]
fn dangling_escape_before_checksum_is_an_error() {
    // `}` as the final payload byte: the escaped byte never arrives.
    // Checksum is over raw bytes, so frame a payload ending in the escape
    // byte by hand.
    let raw = b"ab\x7d";
    let sum: u8 = raw.iter().fold(0u8, |a, &b| a.wrapping_add(b));
    let mut wire = Vec::from(&b"$ab\x7d#"[..]);
    wire.extend_from_slice(format!("{sum:02x}").as_bytes());
    let (packets, errors) = drain(&wire);
    assert!(packets.is_empty());
    assert_eq!(errors, 1);
}

#[test]
fn random_garbage_streams_never_panic() {
    let mut rng = XorShift64Star::new(0x5eed_0004);
    let mut f = Framer::new();
    for _ in 0..20_000 {
        let b = rng.u64_in(0, 255) as u8;
        let _ = f.push(b);
    }
    // And the framer still works afterwards.
    let (packets, _) = {
        let mut f2 = Framer::new();
        let mut packets = Vec::new();
        let mut errors = 0;
        for item in f2.push_bytes(&encode_packet(b"alive")) {
            match item {
                Ok(Item::Packet(p)) => packets.push(p),
                Ok(_) => {}
                Err(_) => errors += 1,
            }
        }
        (packets, errors)
    };
    assert_eq!(packets, vec![b"alive".to_vec()]);
}

#[test]
fn oversized_payload_is_rejected_without_buffering_it_all() {
    let mut f = Framer::new();
    assert!(f.push(b'$').is_none());
    let mut got_error = false;
    // Stream MAX_PAYLOAD + 2 payload bytes; the framer must reject at the
    // cap rather than grow without bound.
    for i in 0..=(MAX_PAYLOAD + 1) {
        if let Some(item) = f.push(b'A') {
            assert!(item.is_err(), "unexpected item at byte {i}");
            got_error = true;
            break;
        }
    }
    assert!(got_error, "oversized payload was silently accepted");
    // Recovery: a fresh packet parses.
    let items = f.push_bytes(&encode_packet(b"ok"));
    assert!(items
        .iter()
        .any(|i| matches!(i, Ok(Item::Packet(p)) if p == b"ok")));
}
