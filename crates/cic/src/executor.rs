//! Target-independent CIC execution (the functional reference).
//!
//! Retargetability is only meaningful against a fixed functional semantics:
//! this executor runs a [`CicModel`] directly — tasks in topological order,
//! channels as unbounded FIFOs, bodies interpreted by the mini-C
//! interpreter — and records everything consumed by *sink* tasks (tasks
//! with no outputs). The translator's per-target executions must reproduce
//! these sink streams exactly (experiment E7).

use std::collections::{BTreeMap, VecDeque};

use mpsoc_minic::interp::Interp;

use crate::error::{Error, Result};
use crate::model::CicModel;

/// The observable behaviour of a run: every token consumed by each sink
/// task, in consumption order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunOutput {
    /// `sink task name -> consumed tokens`.
    pub sinks: BTreeMap<String, Vec<i64>>,
    /// Total task executions.
    pub executions: u64,
}

/// Executes `model` for `iterations` iterations.
///
/// # Errors
///
/// [`Error::Exec`] when a body traps (out-of-bounds, division by zero,
/// step limit) or a channel underflows (model bug).
pub fn execute(model: &CicModel, iterations: u64) -> Result<RunOutput> {
    let order = model.topo_order()?;
    let mut channels: Vec<VecDeque<i64>> = model.channels.iter().map(|_| VecDeque::new()).collect();
    let mut out = RunOutput::default();
    let mut interp = Interp::new(&model.unit);
    for _ in 0..iterations {
        for &t in &order {
            run_task(model, t, &mut channels, &mut interp, &mut out)?;
        }
    }
    Ok(out)
}

/// Executes one task instance against the given channel state.
///
/// Exposed for the translator's per-target executor, which replays tasks in
/// a different (per-PE) order but must use identical body semantics.
///
/// # Errors
///
/// [`Error::Exec`] on body traps or channel underflow.
pub fn run_task(
    model: &CicModel,
    t: usize,
    channels: &mut [VecDeque<i64>],
    interp: &mut Interp<'_>,
    out: &mut RunOutput,
) -> Result<()> {
    let task = &model.tasks[t];
    let ins = model.inputs(t);
    let outs = model.outputs(t);
    let mut args = Vec::new();
    let mut in_bufs = Vec::new();
    for &ci in &ins {
        let n = model.channels[ci].tokens;
        let q = &mut channels[ci];
        if q.len() < n {
            return Err(Error::Exec(format!(
                "channel `{}` underflow feeding task `{}`",
                model.channels[ci].name, task.name
            )));
        }
        let data: Vec<i64> = q.drain(..n).collect();
        in_bufs.push(data);
    }
    for data in &in_bufs {
        args.push(interp.alloc_array(data));
    }
    let mut out_addrs = Vec::new();
    for &co in &outs {
        let n = model.channels[co].tokens;
        let addr = interp.alloc_array(&vec![0i64; n]);
        out_addrs.push((co, addr, n));
        args.push(addr);
    }
    interp
        .run(&task.body_fn, &args)
        .map_err(|e| Error::Exec(format!("task `{}`: {e}", task.name)))?;
    for (co, addr, n) in out_addrs {
        let data = interp
            .read_array(addr, n)
            .map_err(|e| Error::Exec(e.to_string()))?;
        channels[co].extend(data);
    }
    if outs.is_empty() {
        let sink = out.sinks.entry(task.name.clone()).or_default();
        for data in &in_bufs {
            sink.extend_from_slice(data);
        }
    }
    out.executions += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CicChannel, CicTask};
    use mpsoc_minic::parse;

    fn pipeline_model() -> CicModel {
        let unit = parse(
            "void produce(int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = k * 10; } }\n\
             void double_it(int in[], int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = in[k] * 2; } }\n\
             void collect(int in[]) { int x = in[0]; }",
        )
        .unwrap();
        CicModel::new(
            unit,
            vec![
                CicTask {
                    name: "src".into(),
                    body_fn: "produce".into(),
                    period: Some(10),
                    deadline: None,
                    work: 4,
                },
                CicTask {
                    name: "dbl".into(),
                    body_fn: "double_it".into(),
                    period: None,
                    deadline: None,
                    work: 8,
                },
                CicTask {
                    name: "out".into(),
                    body_fn: "collect".into(),
                    period: None,
                    deadline: None,
                    work: 1,
                },
            ],
            vec![
                CicChannel {
                    name: "c0".into(),
                    src: 0,
                    dst: 1,
                    tokens: 4,
                },
                CicChannel {
                    name: "c1".into(),
                    src: 1,
                    dst: 2,
                    tokens: 4,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn pipeline_computes_expected_stream() {
        let m = pipeline_model();
        let out = execute(&m, 2).unwrap();
        assert_eq!(
            out.sinks["out"],
            vec![0, 20, 40, 60, 0, 20, 40, 60],
            "two iterations of doubled ramp"
        );
        assert_eq!(out.executions, 6);
    }

    #[test]
    fn deterministic() {
        let m = pipeline_model();
        assert_eq!(execute(&m, 3).unwrap(), execute(&m, 3).unwrap());
    }

    #[test]
    fn body_trap_reported_with_task_name() {
        let unit = parse("void bad(int out[]) { out[0] = 1 / 0; }").unwrap();
        let m = CicModel::new(
            unit,
            vec![
                CicTask {
                    name: "oops".into(),
                    body_fn: "bad".into(),
                    period: None,
                    deadline: None,
                    work: 1,
                },
                CicTask {
                    name: "snk".into(),
                    body_fn: "bad".into(),
                    period: None,
                    deadline: None,
                    work: 1,
                },
            ],
            vec![CicChannel {
                name: "c".into(),
                src: 0,
                dst: 1,
                tokens: 1,
            }],
        );
        // Note: `snk` has 1 input and 0 outputs but body `bad` takes 1
        // param, so the model itself validates; execution traps on div 0.
        let m = m.unwrap();
        let e = execute(&m, 1).unwrap_err();
        assert!(e.to_string().contains("oops"));
    }
}
