//! The XML-style architecture information file.
//!
//! Section V: *"Information on the target architecture and the design
//! constraints is separately described in an xml-style file, called the
//! architecture information file."* This module defines that format and a
//! hand-rolled parser for the XML subset it needs (elements, attributes,
//! self-closing tags, comments) — small enough that a dependency on a full
//! XML crate is not warranted.
//!
//! ```xml
//! <architecture name="celllike" memory="distributed">
//!   <!-- one host plus SPE-like workers -->
//!   <pe name="ppe" class="risc" speed="1.0"/>
//!   <pe name="spe0" class="dsp" speed="2.0" localwords="16384"/>
//!   <interconnect kind="dma" latency="200"/>
//!   <constraint pe="spe0" maxtasks="2"/>
//! </architecture>
//! ```

use std::collections::HashMap;

use crate::error::{Error, Result};

/// Memory organisation of the target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryModel {
    /// One coherent shared memory (MPCore-like SMP).
    Shared,
    /// Per-PE local stores with explicit transfers (Cell-like).
    Distributed,
}

/// PE classes recognised by the translator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeClass {
    /// General-purpose core.
    Risc,
    /// DSP-like worker.
    Dsp,
}

/// One processing element of the target.
#[derive(Clone, Debug, PartialEq)]
pub struct PeInfo {
    /// PE name.
    pub name: String,
    /// Class.
    pub class: PeClass,
    /// Relative speed.
    pub speed: f64,
    /// Local-store words (distributed targets).
    pub local_words: Option<u64>,
}

/// Interconnect style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterconnectKind {
    /// Explicit DMA block transfers.
    Dma,
    /// Shared bus with lock-protected buffers.
    Bus,
}

/// A per-PE constraint from the architecture file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// Constrained PE.
    pub pe: String,
    /// Maximum number of mapped tasks.
    pub max_tasks: usize,
}

/// The parsed architecture information.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchInfo {
    /// Architecture name.
    pub name: String,
    /// Memory model.
    pub memory: MemoryModel,
    /// Processing elements.
    pub pes: Vec<PeInfo>,
    /// Interconnect.
    pub interconnect: InterconnectKind,
    /// Per-transfer latency (cycles).
    pub comm_latency: u64,
    /// Constraints.
    pub constraints: Vec<Constraint>,
}

impl ArchInfo {
    /// PE index by name.
    pub fn pe_by_name(&self, name: &str) -> Option<usize> {
        self.pes.iter().position(|p| p.name == name)
    }

    /// The maximum task count allowed on PE `pe` (usize::MAX if
    /// unconstrained).
    pub fn max_tasks(&self, pe: &str) -> usize {
        self.constraints
            .iter()
            .find(|c| c.pe == pe)
            .map_or(usize::MAX, |c| c.max_tasks)
    }

    /// A built-in Cell-like distributed target: one RISC host (`ppe`) and
    /// `spes` DSP workers with 16 Ki-word local stores, DMA interconnect.
    pub fn cell_like(spes: usize) -> Self {
        let mut pes = vec![PeInfo {
            name: "ppe".into(),
            class: PeClass::Risc,
            speed: 1.0,
            local_words: None,
        }];
        for i in 0..spes {
            pes.push(PeInfo {
                name: format!("spe{i}"),
                class: PeClass::Dsp,
                speed: 2.0,
                local_words: Some(16 * 1024),
            });
        }
        ArchInfo {
            name: "celllike".into(),
            memory: MemoryModel::Distributed,
            pes,
            interconnect: InterconnectKind::Dma,
            comm_latency: 200,
            constraints: Vec::new(),
        }
    }

    /// A built-in MPCore-like SMP: `cores` identical RISC cores over shared
    /// memory with lock-protected channel buffers.
    pub fn smp_like(cores: usize) -> Self {
        ArchInfo {
            name: "smplike".into(),
            memory: MemoryModel::Shared,
            pes: (0..cores)
                .map(|i| PeInfo {
                    name: format!("cpu{i}"),
                    class: PeClass::Risc,
                    speed: 1.0,
                    local_words: None,
                })
                .collect(),
            interconnect: InterconnectKind::Bus,
            comm_latency: 30,
            constraints: Vec::new(),
        }
    }
}

/// A parsed XML element.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Element {
    name: String,
    attrs: HashMap<String, String>,
    children: Vec<Element>,
    line: usize,
}

/// Parses an architecture information file.
///
/// # Errors
///
/// [`Error::ArchFile`] with a line number for syntax errors, unknown
/// elements/attributes, or missing required fields.
pub fn parse_arch_file(src: &str) -> Result<ArchInfo> {
    let root = parse_xml(src)?;
    if root.name != "architecture" {
        return Err(Error::ArchFile {
            line: root.line,
            msg: format!("expected <architecture>, found <{}>", root.name),
        });
    }
    let name = root
        .attrs
        .get("name")
        .cloned()
        .unwrap_or_else(|| "unnamed".into());
    let memory = match root.attrs.get("memory").map(String::as_str) {
        Some("shared") | None => MemoryModel::Shared,
        Some("distributed") => MemoryModel::Distributed,
        Some(other) => {
            return Err(Error::ArchFile {
                line: root.line,
                msg: format!("unknown memory model `{other}`"),
            })
        }
    };
    let mut pes = Vec::new();
    let mut interconnect = InterconnectKind::Bus;
    let mut comm_latency = 30;
    let mut constraints = Vec::new();
    for child in &root.children {
        match child.name.as_str() {
            "pe" => {
                let pname = child.attrs.get("name").cloned().ok_or(Error::ArchFile {
                    line: child.line,
                    msg: "<pe> needs a name".into(),
                })?;
                let class = match child.attrs.get("class").map(String::as_str) {
                    Some("risc") | None => PeClass::Risc,
                    Some("dsp") => PeClass::Dsp,
                    Some(other) => {
                        return Err(Error::ArchFile {
                            line: child.line,
                            msg: format!("unknown PE class `{other}`"),
                        })
                    }
                };
                let speed = match child.attrs.get("speed") {
                    Some(s) => s.parse().map_err(|_| Error::ArchFile {
                        line: child.line,
                        msg: format!("bad speed `{s}`"),
                    })?,
                    None => 1.0,
                };
                let local_words = match child.attrs.get("localwords") {
                    Some(s) => Some(s.parse().map_err(|_| Error::ArchFile {
                        line: child.line,
                        msg: format!("bad localwords `{s}`"),
                    })?),
                    None => None,
                };
                pes.push(PeInfo {
                    name: pname,
                    class,
                    speed,
                    local_words,
                });
            }
            "interconnect" => {
                interconnect = match child.attrs.get("kind").map(String::as_str) {
                    Some("dma") => InterconnectKind::Dma,
                    Some("bus") | None => InterconnectKind::Bus,
                    Some(other) => {
                        return Err(Error::ArchFile {
                            line: child.line,
                            msg: format!("unknown interconnect `{other}`"),
                        })
                    }
                };
                if let Some(l) = child.attrs.get("latency") {
                    comm_latency = l.parse().map_err(|_| Error::ArchFile {
                        line: child.line,
                        msg: format!("bad latency `{l}`"),
                    })?;
                }
            }
            "constraint" => {
                let pe = child.attrs.get("pe").cloned().ok_or(Error::ArchFile {
                    line: child.line,
                    msg: "<constraint> needs a pe".into(),
                })?;
                let max_tasks = child
                    .attrs
                    .get("maxtasks")
                    .ok_or(Error::ArchFile {
                        line: child.line,
                        msg: "<constraint> needs maxtasks".into(),
                    })?
                    .parse()
                    .map_err(|_| Error::ArchFile {
                        line: child.line,
                        msg: "bad maxtasks".into(),
                    })?;
                constraints.push(Constraint { pe, max_tasks });
            }
            other => {
                return Err(Error::ArchFile {
                    line: child.line,
                    msg: format!("unknown element <{other}>"),
                })
            }
        }
    }
    if pes.is_empty() {
        return Err(Error::ArchFile {
            line: root.line,
            msg: "architecture needs at least one <pe>".into(),
        });
    }
    Ok(ArchInfo {
        name,
        memory,
        pes,
        interconnect,
        comm_latency,
        constraints,
    })
}

/// Minimal XML subset parser: one root element, nested elements,
/// attributes with double-quoted values, `<!-- -->` comments.
fn parse_xml(src: &str) -> Result<Element> {
    let mut pos = 0usize;
    let bytes: Vec<char> = src.chars().collect();
    let line_of = |pos: usize| bytes[..pos].iter().filter(|&&c| c == '\n').count() + 1;

    fn skip_ws(bytes: &[char], pos: &mut usize) {
        while *pos < bytes.len() {
            if bytes[*pos].is_whitespace() {
                *pos += 1;
            } else if bytes[*pos..].starts_with(&['<', '!', '-', '-']) {
                while *pos < bytes.len() && !bytes[*pos..].starts_with(&['-', '-', '>']) {
                    *pos += 1;
                }
                *pos = (*pos + 3).min(bytes.len());
            } else {
                break;
            }
        }
    }

    fn parse_element(
        bytes: &[char],
        pos: &mut usize,
        line_of: &dyn Fn(usize) -> usize,
    ) -> Result<Element> {
        let err = |pos: usize, msg: String| Error::ArchFile {
            line: line_of(pos),
            msg,
        };
        skip_ws(bytes, pos);
        if *pos >= bytes.len() || bytes[*pos] != '<' {
            return Err(err(*pos, "expected `<`".into()));
        }
        let line = line_of(*pos);
        *pos += 1;
        let name_start = *pos;
        while *pos < bytes.len() && (bytes[*pos].is_alphanumeric() || bytes[*pos] == '_') {
            *pos += 1;
        }
        let name: String = bytes[name_start..*pos].iter().collect();
        if name.is_empty() {
            return Err(err(*pos, "empty element name".into()));
        }
        let mut attrs = HashMap::new();
        loop {
            skip_ws(bytes, pos);
            if *pos >= bytes.len() {
                return Err(err(*pos, "unterminated tag".into()));
            }
            if bytes[*pos] == '/' {
                if bytes.get(*pos + 1) == Some(&'>') {
                    *pos += 2;
                    return Ok(Element {
                        name,
                        attrs,
                        children: Vec::new(),
                        line,
                    });
                }
                return Err(err(*pos, "stray `/`".into()));
            }
            if bytes[*pos] == '>' {
                *pos += 1;
                break;
            }
            // attribute
            let astart = *pos;
            while *pos < bytes.len() && (bytes[*pos].is_alphanumeric() || bytes[*pos] == '_') {
                *pos += 1;
            }
            let aname: String = bytes[astart..*pos].iter().collect();
            if aname.is_empty() {
                return Err(err(*pos, format!("bad character `{}` in tag", bytes[*pos])));
            }
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&'=') {
                return Err(err(*pos, format!("attribute `{aname}` needs a value")));
            }
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&'"') {
                return Err(err(*pos, "attribute values must be double-quoted".into()));
            }
            *pos += 1;
            let vstart = *pos;
            while *pos < bytes.len() && bytes[*pos] != '"' {
                *pos += 1;
            }
            if *pos >= bytes.len() {
                return Err(err(*pos, "unterminated attribute value".into()));
            }
            let value: String = bytes[vstart..*pos].iter().collect();
            *pos += 1;
            attrs.insert(aname, value);
        }
        // children until </name>
        let mut children = Vec::new();
        loop {
            skip_ws(bytes, pos);
            if *pos + 1 < bytes.len() && bytes[*pos] == '<' && bytes[*pos + 1] == '/' {
                *pos += 2;
                let cstart = *pos;
                while *pos < bytes.len() && bytes[*pos] != '>' {
                    *pos += 1;
                }
                let cname: String = bytes[cstart..*pos]
                    .iter()
                    .collect::<String>()
                    .trim()
                    .to_string();
                if cname != name {
                    return Err(err(*pos, format!("</{cname}> closes <{name}>")));
                }
                *pos += 1;
                return Ok(Element {
                    name,
                    attrs,
                    children,
                    line,
                });
            }
            if *pos >= bytes.len() {
                return Err(err(*pos, format!("missing </{name}>")));
            }
            children.push(parse_element(bytes, pos, line_of)?);
        }
    }

    skip_ws(&bytes, &mut pos);
    let root = parse_element(&bytes, &mut pos, &line_of)?;
    skip_ws(&bytes, &mut pos);
    if pos < bytes.len() {
        return Err(Error::ArchFile {
            line: line_of(pos),
            msg: "trailing content after root element".into(),
        });
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CELL: &str = r#"
<architecture name="cell" memory="distributed">
  <!-- host -->
  <pe name="ppe" class="risc" speed="1.0"/>
  <pe name="spe0" class="dsp" speed="2.0" localwords="16384"/>
  <pe name="spe1" class="dsp" speed="2.0" localwords="16384"/>
  <interconnect kind="dma" latency="200"/>
  <constraint pe="spe0" maxtasks="2"/>
</architecture>
"#;

    #[test]
    fn parses_full_file() {
        let a = parse_arch_file(CELL).unwrap();
        assert_eq!(a.name, "cell");
        assert_eq!(a.memory, MemoryModel::Distributed);
        assert_eq!(a.pes.len(), 3);
        assert_eq!(a.pes[1].local_words, Some(16384));
        assert_eq!(a.interconnect, InterconnectKind::Dma);
        assert_eq!(a.comm_latency, 200);
        assert_eq!(a.max_tasks("spe0"), 2);
        assert_eq!(a.max_tasks("ppe"), usize::MAX);
    }

    #[test]
    fn defaults_applied() {
        let a = parse_arch_file(r#"<architecture><pe name="c0"/></architecture>"#).unwrap();
        assert_eq!(a.memory, MemoryModel::Shared);
        assert_eq!(a.pes[0].class, PeClass::Risc);
        assert!((a.pes[0].speed - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_positions_reported() {
        let bad = "<architecture>\n  <pe class=\"risc\"/>\n</architecture>";
        let e = parse_arch_file(bad).unwrap_err();
        match e {
            Error::ArchFile { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("name"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_unknown_elements_and_values() {
        assert!(parse_arch_file("<architecture><gpu name=\"g\"/></architecture>").is_err());
        assert!(
            parse_arch_file("<architecture memory=\"weird\"><pe name=\"x\"/></architecture>")
                .is_err()
        );
        assert!(
            parse_arch_file("<architecture><pe name=\"x\" class=\"quantum\"/></architecture>")
                .is_err()
        );
    }

    #[test]
    fn rejects_malformed_xml() {
        assert!(parse_arch_file("<architecture>").is_err());
        assert!(parse_arch_file("<architecture></mismatch>").is_err());
        assert!(parse_arch_file("<architecture><pe name=unquoted/></architecture>").is_err());
        assert!(parse_arch_file("<a></a><b></b>").is_err());
    }

    #[test]
    fn empty_pe_list_rejected() {
        assert!(parse_arch_file("<architecture></architecture>").is_err());
    }

    #[test]
    fn builtin_targets() {
        let cell = ArchInfo::cell_like(4);
        assert_eq!(cell.pes.len(), 5);
        assert_eq!(cell.memory, MemoryModel::Distributed);
        let smp = ArchInfo::smp_like(2);
        assert_eq!(smp.pes.len(), 2);
        assert_eq!(smp.memory, MemoryModel::Shared);
    }
}
