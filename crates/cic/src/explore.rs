//! Design-space exploration over target architectures.
//!
//! Section V closes with the HOPES agenda: *"There are many issues to be
//! researched further in the future, which include optimal mapping of CIC
//! tasks to a given target architecture, **exploration of optimal target
//! architecture**, and optimizing the CIC translator for specific target
//! architectures."* This module implements that exploration: it sweeps a
//! family of candidate platforms (SMP core counts, Cell-like worker
//! counts), auto-maps and translates the model onto each, and selects the
//! cheapest candidate whose estimated iteration time meets a deadline.

use crate::archfile::{ArchInfo, PeClass};
use crate::error::{Error, Result};
use crate::model::CicModel;
use crate::translator::{auto_map, translate};

/// One evaluated candidate platform.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// The architecture name (e.g. `"smplike"`).
    pub arch: ArchInfo,
    /// Estimated cycles per graph iteration after translation.
    pub est_cycles: u64,
    /// Abstract silicon cost of the platform (RISC = 1.0, DSP = 0.8 —
    /// smaller cores — plus 0.2 for a DMA interconnect).
    pub cost: f64,
    /// Whether the candidate meets the deadline.
    pub meets_deadline: bool,
}

/// The exploration outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Exploration {
    /// Every candidate evaluated, in sweep order.
    pub candidates: Vec<Candidate>,
    /// Index of the cheapest deadline-meeting candidate, if any.
    pub best: Option<usize>,
}

impl Exploration {
    /// The winning candidate, if any met the deadline.
    pub fn best_candidate(&self) -> Option<&Candidate> {
        self.best.map(|i| &self.candidates[i])
    }
}

fn platform_cost(arch: &ArchInfo) -> f64 {
    let pe_cost: f64 = arch
        .pes
        .iter()
        .map(|p| match p.class {
            PeClass::Risc => 1.0,
            PeClass::Dsp => 0.8,
        })
        .sum();
    let ic = match arch.interconnect {
        crate::archfile::InterconnectKind::Dma => 0.2,
        crate::archfile::InterconnectKind::Bus => 0.1,
    };
    pe_cost + ic
}

/// Explores SMP targets with 1..=`max_cores` cores and Cell-like targets
/// with 1..=`max_workers` SPEs, returning every candidate and the cheapest
/// one whose estimated iteration time is at most `deadline_cycles`.
///
/// # Errors
///
/// [`Error::Mapping`] if the sweep bounds are zero; mapping/translation
/// errors propagate (they indicate an over-constrained model).
pub fn explore(
    model: &CicModel,
    deadline_cycles: u64,
    max_cores: usize,
    max_workers: usize,
) -> Result<Exploration> {
    explore_observed(
        model,
        deadline_cycles,
        max_cores,
        max_workers,
        &mut mpsoc_obs::event::ObsCtx::none(),
    )
}

/// [`explore`] with an observability context: bumps the
/// `cic.candidates_evaluated` counter and emits one instant per candidate
/// (category `"cic"`, sweep index as the timestamp, estimated cycles as the
/// argument). Passing [`mpsoc_obs::event::ObsCtx::none`] is exactly
/// [`explore`].
///
/// # Errors
///
/// Same conditions as [`explore`].
pub fn explore_observed(
    model: &CicModel,
    deadline_cycles: u64,
    max_cores: usize,
    max_workers: usize,
    obs: &mut mpsoc_obs::event::ObsCtx<'_>,
) -> Result<Exploration> {
    if max_cores == 0 || max_workers == 0 {
        return Err(Error::Mapping("exploration bounds must be non-zero".into()));
    }
    let evaluated = obs.metrics.map(|r| r.counter("cic.candidates_evaluated"));
    let mut candidates = Vec::new();
    let mut archs: Vec<ArchInfo> = (1..=max_cores).map(ArchInfo::smp_like).collect();
    archs.extend((1..=max_workers).map(ArchInfo::cell_like));
    for (i, arch) in archs.into_iter().enumerate() {
        let mapping = auto_map(model, &arch)?;
        let t = translate(model, &arch, &mapping)?;
        if let Some(c) = &evaluated {
            c.inc();
        }
        obs.emit(|| {
            mpsoc_obs::event::Event::instant(i as u64, arch.name.clone(), "cic", 0)
                .with_arg("est_cycles", t.est_cycles)
        });
        candidates.push(Candidate {
            est_cycles: t.est_cycles,
            cost: platform_cost(&arch),
            meets_deadline: t.est_cycles <= deadline_cycles,
            arch,
        });
    }
    let best = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.meets_deadline)
        .min_by(|(_, a), (_, b)| {
            a.cost
                .partial_cmp(&b.cost)
                .expect("costs are finite")
                .then(a.est_cycles.cmp(&b.est_cycles))
        })
        .map(|(i, _)| i);
    Ok(Exploration { candidates, best })
}

/// [`explore`] with the candidate sweep fanned out through the shared
/// [`mpsoc_explore::Sweep`] engine.
///
/// Candidate evaluation (auto-map + translate) is independent per
/// architecture, so the sweep parallelises embarrassingly. Candidates keep
/// their sweep indices, errors are reported in sweep order, and the winner
/// is selected by the same fixed `(cost, est_cycles, index)` order as the
/// serial sweep — the returned [`Exploration`] is **bit-identical to
/// [`explore`]** for any `threads >= 1`.
///
/// # Errors
///
/// Same conditions as [`explore`], with ties in error reporting broken by
/// sweep index.
pub fn explore_parallel(
    model: &CicModel,
    deadline_cycles: u64,
    max_cores: usize,
    max_workers: usize,
    threads: usize,
) -> Result<Exploration> {
    if max_cores == 0 || max_workers == 0 {
        return Err(Error::Mapping("exploration bounds must be non-zero".into()));
    }
    let mut archs: Vec<ArchInfo> = (1..=max_cores).map(ArchInfo::smp_like).collect();
    archs.extend((1..=max_workers).map(ArchInfo::cell_like));
    let n = archs.len();
    let results = mpsoc_explore::Sweep::new(threads)
        .run(n, |i| evaluate_candidate(model, &archs[i], deadline_cycles));

    // Index-ordered merge: the first failing candidate's error is the one
    // the serial sweep would have hit first.
    let mut candidates = Vec::with_capacity(n);
    for r in results {
        candidates.push(r?);
    }
    let best = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.meets_deadline)
        .min_by(|(_, a), (_, b)| {
            a.cost
                .partial_cmp(&b.cost)
                .expect("costs are finite")
                .then(a.est_cycles.cmp(&b.est_cycles))
        })
        .map(|(i, _)| i);
    Ok(Exploration { candidates, best })
}

/// Re-costs a CIC model from measured calibration data on a simulated
/// platform.
///
/// The platform is positioned at the region of interest via `prefix` —
/// re-simulated from scratch or restored from a snapshot
/// ([`PrefixSource::Warm`], the warm start) — and the word at
/// `profile_addr + t` is read for task `t`. A positive word replaces the
/// task's declared [`work`](crate::model::CicTask::work) estimate; zero or
/// negative words leave it untouched. A snapshot restore is bit-identical
/// to having simulated the prefix, so warm and cold sources yield the same
/// calibrated model.
///
/// # Errors
///
/// [`Error::Exec`] when the prefix cannot be materialized or a calibration
/// word is outside the platform's address map.
///
/// [`PrefixSource::Warm`]: mpsoc_platform::PrefixSource::Warm
pub fn calibrate_task_work(
    model: &CicModel,
    prefix: &mpsoc_platform::PrefixSource<'_>,
    profile_addr: u32,
) -> Result<CicModel> {
    let p = prefix
        .materialize()
        .map_err(|e| Error::Exec(format!("calibration prefix: {e}")))?;
    let mut calibrated = model.clone();
    for (t, task) in calibrated.tasks.iter_mut().enumerate() {
        let addr = profile_addr
            .checked_add(t as u32)
            .ok_or_else(|| Error::Exec("calibration address overflow".into()))?;
        let w = p
            .debug_read(addr)
            .map_err(|e| Error::Exec(format!("calibration word for task {t}: {e}")))?;
        if w > 0 {
            task.work = w as u64;
        }
    }
    Ok(calibrated)
}

/// [`explore_parallel`] over a calibration-re-costed model (see
/// [`calibrate_task_work`]): per-task work estimates come from measurements
/// taken on a platform at the region of interest. Passing a captured
/// snapshot as `prefix` ([`PrefixSource::Warm`]) skips re-simulating the
/// prefix — the snapshot warm start — while returning an [`Exploration`]
/// bit-identical to the cold path at every `threads` value.
///
/// # Errors
///
/// As [`calibrate_task_work`] and [`explore_parallel`].
///
/// [`PrefixSource::Warm`]: mpsoc_platform::PrefixSource::Warm
pub fn explore_parallel_profiled(
    model: &CicModel,
    deadline_cycles: u64,
    max_cores: usize,
    max_workers: usize,
    threads: usize,
    prefix: &mpsoc_platform::PrefixSource<'_>,
    profile_addr: u32,
) -> Result<Exploration> {
    let calibrated = calibrate_task_work(model, prefix, profile_addr)?;
    explore_parallel(
        &calibrated,
        deadline_cycles,
        max_cores,
        max_workers,
        threads,
    )
}

/// Maps and translates the model onto one candidate architecture.
fn evaluate_candidate(
    model: &CicModel,
    arch: &ArchInfo,
    deadline_cycles: u64,
) -> Result<Candidate> {
    let mapping = auto_map(model, arch)?;
    let t = translate(model, arch, &mapping)?;
    Ok(Candidate {
        est_cycles: t.est_cycles,
        cost: platform_cost(arch),
        meets_deadline: t.est_cycles <= deadline_cycles,
        arch: arch.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CicChannel, CicTask};

    fn model() -> CicModel {
        let unit = mpsoc_minic::parse(
            "void gen(int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = k; } }\n\
             void work(int in[], int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = in[k] * 3; } }\n\
             void fin(int in[]) { int x = in[0]; }",
        )
        .unwrap();
        CicModel::new(
            unit,
            vec![
                CicTask {
                    name: "gen".into(),
                    body_fn: "gen".into(),
                    period: Some(100),
                    deadline: None,
                    work: 200,
                },
                CicTask {
                    name: "work".into(),
                    body_fn: "work".into(),
                    period: None,
                    deadline: None,
                    work: 800,
                },
                CicTask {
                    name: "fin".into(),
                    body_fn: "fin".into(),
                    period: None,
                    deadline: Some(1_000),
                    work: 100,
                },
            ],
            vec![
                CicChannel {
                    name: "a".into(),
                    src: 0,
                    dst: 1,
                    tokens: 4,
                },
                CicChannel {
                    name: "b".into(),
                    src: 1,
                    dst: 2,
                    tokens: 4,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn tight_deadline_needs_bigger_platform() {
        let m = model();
        let loose = explore(&m, 2_000, 4, 4).unwrap();
        let tight = explore(&m, 900, 4, 4).unwrap();
        let loose_best = loose.best_candidate().expect("loose is feasible");
        let tight_best = tight.best_candidate().expect("tight is feasible");
        assert!(
            tight_best.cost >= loose_best.cost,
            "tight {tight_best:?} vs loose {loose_best:?}"
        );
        // Loose deadline: a single cheap core suffices.
        assert_eq!(loose_best.arch.pes.len(), 1);
    }

    #[test]
    fn infeasible_deadline_has_no_winner() {
        let m = model();
        let e = explore(&m, 10, 3, 3).unwrap();
        assert!(e.best.is_none());
        assert_eq!(e.candidates.len(), 6);
        assert!(e.candidates.iter().all(|c| !c.meets_deadline));
    }

    #[test]
    fn best_is_cheapest_feasible() {
        let m = model();
        let e = explore(&m, 1_500, 4, 4).unwrap();
        let best = e.best_candidate().unwrap();
        for c in &e.candidates {
            if c.meets_deadline {
                assert!(best.cost <= c.cost);
            }
        }
    }

    #[test]
    fn bounds_validated() {
        let m = model();
        assert!(explore(&m, 100, 0, 1).is_err());
        assert!(explore_parallel(&m, 100, 1, 0, 2).is_err());
    }

    #[test]
    fn profiled_sweep_warm_start_matches_cold() {
        use mpsoc_platform::isa::assemble;
        use mpsoc_platform::platform::PlatformBuilder;
        use mpsoc_platform::{Frequency, PrefixSource};

        // A calibration run that deposits measured per-task work at 0x100.
        let build = || -> mpsoc_platform::Result<mpsoc_platform::Platform> {
            let mut p = PlatformBuilder::new()
                .cores(1, Frequency::mhz(100))
                .shared_words(512)
                .cache(None)
                .build()?;
            let prog = assemble(
                "movi r1, 0x100\nmovi r2, 300\nst r2, r1, 0\nmovi r2, 500\nst r2, r1, 1\n\
                 movi r2, 150\nst r2, r1, 2\nhalt",
            )
            .unwrap();
            p.load_program(0, prog, 0)?;
            Ok(p)
        };
        let steps = 10;
        let cold = PrefixSource::Cold {
            build: &build,
            steps,
        };
        let mut p = build().unwrap();
        for _ in 0..steps {
            p.step().unwrap();
        }
        let image = p.capture().unwrap();
        let warm = PrefixSource::Warm { image: &image };

        let m = model();
        // Calibration really replaces the declared work estimates.
        let calibrated = calibrate_task_work(&m, &warm, 0x100).unwrap();
        assert_eq!(
            calibrated.tasks.iter().map(|t| t.work).collect::<Vec<_>>(),
            vec![300, 500, 150]
        );
        // Warm equals cold, bit for bit, at every thread count.
        for deadline in [600u64, 1_000, 2_000] {
            let reference = explore_parallel_profiled(&m, deadline, 4, 4, 1, &cold, 0x100).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let warm_e =
                    explore_parallel_profiled(&m, deadline, 4, 4, threads, &warm, 0x100).unwrap();
                assert_eq!(reference, warm_e, "deadline {deadline}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_sweep_is_thread_count_invariant() {
        let m = model();
        for deadline in [10u64, 900, 1_500, 2_000] {
            let serial = explore(&m, deadline, 4, 4).unwrap();
            for threads in [1usize, 2, 3, 4, 8] {
                let par = explore_parallel(&m, deadline, 4, 4, threads).unwrap();
                assert_eq!(par, serial, "deadline {deadline}, {threads} threads");
            }
        }
    }
}
