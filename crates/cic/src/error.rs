//! CIC error type.

use std::fmt;

/// Errors raised by the CIC model, architecture files, and translator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A named task/channel/PE/function was not found.
    NotFound(String),
    /// The architecture information file is malformed.
    ArchFile {
        /// 1-based line.
        line: usize,
        /// Reason.
        msg: String,
    },
    /// The CIC model is ill-formed.
    Model(String),
    /// A mapping violates a constraint.
    Mapping(String),
    /// Execution of the model failed.
    Exec(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(n) => write!(f, "`{n}` not found"),
            Error::ArchFile { line, msg } => {
                write!(f, "architecture file error at line {line}: {msg}")
            }
            Error::Model(m) => write!(f, "ill-formed CIC model: {m}"),
            Error::Mapping(m) => write!(f, "invalid mapping: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;
