//! The CIC translator — Figure 2's `CIC Translation to Target-Executable C
//! Code`.
//!
//! *"The CIC translator automatically translates the task codes in the CIC
//! model into the final parallel code, following the partitioning decision.
//! The CIC translation involves synthesizing the interface code between
//! tasks and a run-time system that schedules the mapped tasks, extracting
//! the necessary information from the architecture information file."*
//!
//! Given a [`CicModel`], an [`ArchInfo`], and a task→PE mapping, the
//! translator produces:
//!
//! * a [`PeProgram`] per PE — the synthesised run-time system: the order in
//!   which the PE receives, executes, and sends (one graph iteration);
//! * target-specific mini-C source per PE, with communication primitives
//!   chosen by the architecture's memory model (`dma_get`/`dma_put` +
//!   mailbox waits for Cell-like distributed stores, lock-protected shared
//!   buffers for SMP);
//! * a cycle estimate, so retargeting shows *performance* differences while
//!   [`execute_translation`] proves *functional* equivalence.

use std::collections::VecDeque;
use std::fmt::Write as _;

use mpsoc_minic::interp::Interp;
use mpsoc_minic::printer::print_function;

use crate::archfile::{ArchInfo, MemoryModel};
use crate::error::{Error, Result};
use crate::executor::{run_task, RunOutput};
use crate::model::CicModel;

/// One step of a PE's synthesised run-time loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Wait for / fetch the tokens of channel `ch` (cross-PE input).
    Recv {
        /// Channel index.
        ch: usize,
    },
    /// Execute task `task`.
    Exec {
        /// Task index.
        task: usize,
    },
    /// Publish the tokens of channel `ch` (cross-PE output).
    Send {
        /// Channel index.
        ch: usize,
    },
}

/// The synthesised run-time system of one PE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeProgram {
    /// PE name.
    pub pe: String,
    /// One iteration's ops, in order.
    pub ops: Vec<Op>,
}

/// A completed translation.
#[derive(Clone, Debug, PartialEq)]
pub struct Translation {
    /// Name of the target architecture.
    pub arch_name: String,
    /// Memory model that drove primitive selection.
    pub memory: MemoryModel,
    /// `mapping[task] = pe index`.
    pub mapping: Vec<usize>,
    /// Per-PE run-time programs (only PEs with tasks).
    pub pe_programs: Vec<PeProgram>,
    /// Per-PE generated source.
    pub sources: Vec<(String, String)>,
    /// Estimated cycles for one graph iteration (compute + communication).
    pub est_cycles: u64,
}

/// Greedy automatic mapping: heaviest tasks first onto the least-loaded PE
/// that still satisfies the architecture's `maxtasks` constraints
/// (speed-normalised load).
///
/// # Errors
///
/// [`Error::Mapping`] if constraints make placement impossible.
pub fn auto_map(model: &CicModel, arch: &ArchInfo) -> Result<Vec<usize>> {
    let mut order: Vec<usize> = (0..model.tasks.len()).collect();
    order.sort_by_key(|&t| std::cmp::Reverse((model.tasks[t].work, t)));
    let mut load = vec![0f64; arch.pes.len()];
    let mut count = vec![0usize; arch.pes.len()];
    let mut mapping = vec![0usize; model.tasks.len()];
    for t in order {
        let mut best: Option<(f64, usize)> = None;
        for (pi, pe) in arch.pes.iter().enumerate() {
            if count[pi] >= arch.max_tasks(&pe.name) {
                continue;
            }
            let new_load = load[pi] + model.tasks[t].work as f64 / pe.speed;
            if best.is_none_or(|(bl, _)| new_load < bl) {
                best = Some((new_load, pi));
            }
        }
        let Some((new_load, pi)) = best else {
            return Err(Error::Mapping(format!(
                "no PE can accept task `{}` under maxtasks constraints",
                model.tasks[t].name
            )));
        };
        load[pi] = new_load;
        count[pi] += 1;
        mapping[t] = pi;
    }
    Ok(mapping)
}

/// Translates `model` for `arch` under `mapping`.
///
/// # Errors
///
/// [`Error::Mapping`] for out-of-range PEs or violated constraints;
/// [`Error::Model`] is impossible for a validated model.
pub fn translate(model: &CicModel, arch: &ArchInfo, mapping: &[usize]) -> Result<Translation> {
    if mapping.len() != model.tasks.len() {
        return Err(Error::Mapping(format!(
            "mapping of {} tasks for model of {}",
            mapping.len(),
            model.tasks.len()
        )));
    }
    if let Some(&pe) = mapping.iter().find(|&&pe| pe >= arch.pes.len()) {
        return Err(Error::Mapping(format!("mapping references PE {pe}")));
    }
    for (pi, pe) in arch.pes.iter().enumerate() {
        let n = mapping.iter().filter(|&&m| m == pi).count();
        if n > arch.max_tasks(&pe.name) {
            return Err(Error::Mapping(format!(
                "{n} tasks on `{}` exceed maxtasks {}",
                pe.name,
                arch.max_tasks(&pe.name)
            )));
        }
    }
    let order = model.topo_order()?;

    // Synthesise per-PE programs: tasks in topological order, receives
    // before, sends after, only for cross-PE channels.
    let mut programs: Vec<PeProgram> = Vec::new();
    for (pi, pe) in arch.pes.iter().enumerate() {
        let mut ops = Vec::new();
        for &t in &order {
            if mapping[t] != pi {
                continue;
            }
            for ci in model.inputs(t) {
                if mapping[model.channels[ci].src] != pi {
                    ops.push(Op::Recv { ch: ci });
                }
            }
            ops.push(Op::Exec { task: t });
            for ci in model.outputs(t) {
                if mapping[model.channels[ci].dst] != pi {
                    ops.push(Op::Send { ch: ci });
                }
            }
        }
        if !ops.is_empty() {
            programs.push(PeProgram {
                pe: pe.name.clone(),
                ops,
            });
        }
    }

    // Generate per-PE source.
    let mut sources = Vec::new();
    for prog in &programs {
        sources.push((prog.pe.clone(), generate_pe_source(model, arch, prog)?));
    }

    // Cycle estimate: per-PE compute (speed-scaled) + comm latency per
    // cross-PE channel; the iteration takes the max over PEs plus comm.
    let mut pe_compute = vec![0u64; arch.pes.len()];
    for (t, task) in model.tasks.iter().enumerate() {
        let pe = mapping[t];
        pe_compute[pe] += (task.work as f64 / arch.pes[pe].speed).ceil() as u64;
    }
    let crossings = model
        .channels
        .iter()
        .filter(|c| mapping[c.src] != mapping[c.dst])
        .count() as u64;
    let est_cycles = pe_compute.into_iter().max().unwrap_or(0) + crossings * arch.comm_latency;

    Ok(Translation {
        arch_name: arch.name.clone(),
        memory: arch.memory,
        mapping: mapping.to_vec(),
        pe_programs: programs,
        sources,
        est_cycles,
    })
}

fn generate_pe_source(model: &CicModel, arch: &ArchInfo, prog: &PeProgram) -> Result<String> {
    let mut src = String::new();
    let _ = writeln!(src, "// target: {} ({:?} memory)", arch.name, arch.memory);
    let _ = writeln!(src, "// PE: {}", prog.pe);
    // Emit the bodies of the tasks this PE runs (target-independent code
    // carried over verbatim — the essence of CIC retargetability).
    let mut emitted: Vec<&str> = Vec::new();
    for op in &prog.ops {
        if let Op::Exec { task } = op {
            let body_fn = model.tasks[*task].body_fn.as_str();
            if !emitted.contains(&body_fn) {
                if let Some(f) = model.unit.function(body_fn) {
                    print_function(&mut src, f);
                    src.push('\n');
                }
                emitted.push(body_fn);
            }
        }
    }
    let _ = writeln!(src, "void runtime_main(void) {{");
    for op in &prog.ops {
        match (op, arch.memory) {
            (Op::Recv { ch }, MemoryModel::Distributed) => {
                let _ = writeln!(src, "    mbx_wait({ch});");
                let _ = writeln!(src, "    dma_get({ch});");
            }
            (Op::Recv { ch }, MemoryModel::Shared) => {
                let _ = writeln!(src, "    ch_lock({ch});");
                let _ = writeln!(src, "    buf_read({ch});");
                let _ = writeln!(src, "    ch_unlock({ch});");
            }
            (Op::Exec { task }, _) => {
                let _ = writeln!(src, "    run_{}();", model.tasks[*task].name);
            }
            (Op::Send { ch }, MemoryModel::Distributed) => {
                let _ = writeln!(src, "    dma_put({ch});");
                let _ = writeln!(src, "    mbx_notify({ch});");
            }
            (Op::Send { ch }, MemoryModel::Shared) => {
                let _ = writeln!(src, "    ch_lock({ch});");
                let _ = writeln!(src, "    buf_write({ch});");
                let _ = writeln!(src, "    ch_unlock({ch});");
            }
        }
    }
    src.push_str("}\n");
    Ok(src)
}

/// Executes a translation: runs the per-PE programs concurrently
/// (round-robin with blocking receives) using the same interpreted bodies
/// as the reference executor, proving the translation functionally
/// transparent.
///
/// # Errors
///
/// [`Error::Exec`] on body traps or a communication deadlock (impossible
/// for translator-produced programs; guards hand-written ones).
pub fn execute_translation(
    model: &CicModel,
    translation: &Translation,
    iterations: u64,
) -> Result<RunOutput> {
    let mut channels: Vec<VecDeque<i64>> = model.channels.iter().map(|_| VecDeque::new()).collect();
    let mut out = RunOutput::default();
    let mut interp = Interp::new(&model.unit);
    // Per-PE cursor: (iteration, op index).
    let mut cursor = vec![(0u64, 0usize); translation.pe_programs.len()];
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for (pi, prog) in translation.pe_programs.iter().enumerate() {
            let (ref mut iter, ref mut opi) = cursor[pi];
            if *iter >= iterations {
                continue;
            }
            all_done = false;
            while *iter < iterations {
                let op = prog.ops[*opi];
                let ok = match op {
                    Op::Recv { ch } => channels[ch].len() >= model.channels[ch].tokens,
                    Op::Exec { task } => {
                        // Local inputs were produced earlier on this PE and
                        // remote inputs gated by the preceding Recv ops, so
                        // an Exec is only blocked if a Recv above it was.
                        let ready = model
                            .inputs(task)
                            .iter()
                            .all(|&ci| channels[ci].len() >= model.channels[ci].tokens);
                        if ready {
                            run_task(model, task, &mut channels, &mut interp, &mut out)?;
                            true
                        } else {
                            false
                        }
                    }
                    Op::Send { .. } => true,
                };
                if !ok {
                    break;
                }
                progressed = true;
                *opi += 1;
                if *opi == prog.ops.len() {
                    *opi = 0;
                    *iter += 1;
                }
            }
        }
        if all_done {
            return Ok(out);
        }
        if !progressed {
            return Err(Error::Exec("translated programs deadlocked".into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archfile::ArchInfo;
    use crate::executor::execute;
    use crate::model::{CicChannel, CicModel, CicTask};
    use mpsoc_minic::parse;

    /// A 4-stage pipeline with a side channel — enough structure to cross
    /// PEs in interesting ways.
    fn app() -> CicModel {
        let unit = parse(
            "void gen(int out[], int side[]) {\n\
               for (k = 0; k < 8; k = k + 1) { out[k] = k * 3 + 1; }\n\
               for (k = 0; k < 2; k = k + 1) { side[k] = k + 100; }\n\
             }\n\
             void stage1(int in[], int out[]) { for (k = 0; k < 8; k = k + 1) { out[k] = in[k] * in[k] % 251; } }\n\
             void stage2(int in[], int side[], int out[]) {\n\
               for (k = 0; k < 8; k = k + 1) { out[k] = in[k] + side[k % 2]; }\n\
             }\n\
             void emit(int in[]) { int x = in[0]; }",
        )
        .unwrap();
        CicModel::new(
            unit,
            vec![
                CicTask {
                    name: "gen".into(),
                    body_fn: "gen".into(),
                    period: Some(1000),
                    deadline: None,
                    work: 100,
                },
                CicTask {
                    name: "s1".into(),
                    body_fn: "stage1".into(),
                    period: None,
                    deadline: None,
                    work: 400,
                },
                CicTask {
                    name: "s2".into(),
                    body_fn: "stage2".into(),
                    period: None,
                    deadline: None,
                    work: 300,
                },
                CicTask {
                    name: "emit".into(),
                    body_fn: "emit".into(),
                    period: None,
                    deadline: Some(2000),
                    work: 50,
                },
            ],
            vec![
                CicChannel {
                    name: "d01".into(),
                    src: 0,
                    dst: 1,
                    tokens: 8,
                },
                CicChannel {
                    name: "d12".into(),
                    src: 1,
                    dst: 2,
                    tokens: 8,
                },
                CicChannel {
                    name: "side".into(),
                    src: 0,
                    dst: 2,
                    tokens: 2,
                },
                CicChannel {
                    name: "d23".into(),
                    src: 2,
                    dst: 3,
                    tokens: 8,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn auto_map_balances_and_respects_constraints() {
        let m = app();
        let mut arch = ArchInfo::cell_like(2);
        arch.constraints.push(crate::archfile::Constraint {
            pe: "spe0".into(),
            max_tasks: 1,
        });
        let map = auto_map(&m, &arch).unwrap();
        let on_spe0 = map
            .iter()
            .filter(|&&pe| arch.pes[pe].name == "spe0")
            .count();
        assert!(on_spe0 <= 1);
    }

    #[test]
    fn same_cic_translates_to_both_targets() {
        let m = app();
        for arch in [ArchInfo::cell_like(3), ArchInfo::smp_like(4)] {
            let map = auto_map(&m, &arch).unwrap();
            let t = translate(&m, &arch, &map).unwrap();
            assert!(!t.pe_programs.is_empty());
            assert!(!t.sources.is_empty());
        }
    }

    #[test]
    fn retargeting_preserves_function() {
        // The headline claim of Section V: one CIC spec, two targets,
        // identical observable output.
        let m = app();
        let reference = execute(&m, 3).unwrap();
        for arch in [ArchInfo::cell_like(3), ArchInfo::smp_like(4)] {
            let map = auto_map(&m, &arch).unwrap();
            let t = translate(&m, &arch, &map).unwrap();
            let run = execute_translation(&m, &t, 3).unwrap();
            assert_eq!(
                run.sinks, reference.sinks,
                "target `{}` diverged from the reference",
                arch.name
            );
        }
    }

    #[test]
    fn backends_use_their_own_primitives() {
        let m = app();
        let cell = ArchInfo::cell_like(3);
        let map = auto_map(&m, &cell).unwrap();
        let t = translate(&m, &cell, &map).unwrap();
        let all: String = t.sources.iter().map(|(_, s)| s.clone()).collect();
        if t.pe_programs
            .iter()
            .any(|p| p.ops.iter().any(|o| matches!(o, Op::Recv { .. })))
        {
            assert!(all.contains("dma_get("));
            assert!(!all.contains("ch_lock("));
        }
        let smp = ArchInfo::smp_like(4);
        let map = auto_map(&m, &smp).unwrap();
        let t = translate(&m, &smp, &map).unwrap();
        let all: String = t.sources.iter().map(|(_, s)| s.clone()).collect();
        if t.pe_programs
            .iter()
            .any(|p| p.ops.iter().any(|o| matches!(o, Op::Recv { .. })))
        {
            assert!(all.contains("ch_lock("));
            assert!(!all.contains("dma_get("));
        }
    }

    #[test]
    fn generated_sources_parse_as_minic() {
        let m = app();
        let arch = ArchInfo::smp_like(2);
        let map = auto_map(&m, &arch).unwrap();
        let t = translate(&m, &arch, &map).unwrap();
        for (pe, src) in &t.sources {
            parse(src).unwrap_or_else(|e| panic!("PE `{pe}` source invalid: {e}\n{src}"));
        }
    }

    #[test]
    fn single_pe_mapping_has_no_comm_ops() {
        let m = app();
        let arch = ArchInfo::smp_like(1);
        let map = vec![0; m.tasks.len()];
        let t = translate(&m, &arch, &map).unwrap();
        assert_eq!(t.pe_programs.len(), 1);
        assert!(t.pe_programs[0]
            .ops
            .iter()
            .all(|o| matches!(o, Op::Exec { .. })));
        // And it still computes the same thing.
        assert_eq!(
            execute_translation(&m, &t, 2).unwrap().sinks,
            execute(&m, 2).unwrap().sinks
        );
    }

    #[test]
    fn estimate_reflects_speed_and_comm() {
        let m = app();
        // Single-PE SMP pays no comm but serialises all work.
        let smp = ArchInfo::smp_like(1);
        let ts = translate(&m, &smp, &vec![0; m.tasks.len()]).unwrap();
        assert_eq!(ts.est_cycles, m.tasks.iter().map(|t| t.work).sum::<u64>());
        // Same mapping, pricier interconnect => larger estimate.
        let cheap = ArchInfo::cell_like(3);
        let map = auto_map(&m, &cheap).unwrap();
        let mut pricey = cheap.clone();
        pricey.comm_latency = 2_000;
        let tc = translate(&m, &cheap, &map).unwrap();
        let tp = translate(&m, &pricey, &map).unwrap();
        assert!(tp.est_cycles > tc.est_cycles);
        // Distributing over faster SPEs shrinks the compute component.
        let smp4 = ArchInfo::smp_like(4);
        let t4 = translate(&m, &smp4, &auto_map(&m, &smp4).unwrap()).unwrap();
        assert!(t4.est_cycles < ts.est_cycles + 4 * smp4.comm_latency);
    }

    #[test]
    fn mapping_validation() {
        let m = app();
        let arch = ArchInfo::smp_like(2);
        assert!(translate(&m, &arch, &[0]).is_err());
        assert!(translate(&m, &arch, &[0, 1, 2, 9]).is_err());
        let mut constrained = ArchInfo::smp_like(2);
        constrained.constraints.push(crate::archfile::Constraint {
            pe: "cpu0".into(),
            max_tasks: 1,
        });
        assert!(translate(&m, &constrained, &[0, 0, 1, 1]).is_err());
    }
}
