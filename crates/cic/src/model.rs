//! The Common Intermediate Code model.
//!
//! Section V: *"In a CIC, the potential functional and data parallelism of
//! application tasks are specified independently of the target architecture
//! and design constraints. CIC tasks are concurrent tasks communicating
//! with each other through channels."*
//!
//! A [`CicModel`] bundles a mini-C translation unit (the task bodies), the
//! task declarations with their real-time annotations, and the channels.
//! Task bodies follow a fixed convention: a task with *m* input ports and
//! *n* output ports is a `void` function taking *m* input arrays followed
//! by *n* output arrays; each port moves a fixed number of tokens per
//! execution. This keeps the bodies **target independent** — all
//! communication is synthesised by the translator.

use mpsoc_minic::{Type, Unit};

use crate::error::{Error, Result};

/// A CIC task declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CicTask {
    /// Task name.
    pub name: String,
    /// The mini-C function implementing the task body.
    pub body_fn: String,
    /// Optional period annotation (cycles).
    pub period: Option<u64>,
    /// Optional deadline annotation (cycles).
    pub deadline: Option<u64>,
    /// Work estimate per execution (reference cycles), for mapping.
    pub work: u64,
}

/// A typed FIFO channel between two task ports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CicChannel {
    /// Channel name.
    pub name: String,
    /// Producing task (index into [`CicModel::tasks`]).
    pub src: usize,
    /// Consuming task.
    pub dst: usize,
    /// Tokens moved per task execution.
    pub tokens: usize,
}

/// A complete CIC specification.
#[derive(Clone, Debug, PartialEq)]
pub struct CicModel {
    /// The mini-C unit holding every task body.
    pub unit: Unit,
    /// Task declarations.
    pub tasks: Vec<CicTask>,
    /// Channels.
    pub channels: Vec<CicChannel>,
}

impl CicModel {
    /// Builds and validates a model.
    ///
    /// # Errors
    ///
    /// [`Error::Model`] when a body function is missing, its signature does
    /// not match the task's ports, channel endpoints are out of range, the
    /// channel topology is cyclic, or a channel moves zero tokens.
    pub fn new(unit: Unit, tasks: Vec<CicTask>, channels: Vec<CicChannel>) -> Result<Self> {
        let model = CicModel {
            unit,
            tasks,
            channels,
        };
        model.validate()?;
        Ok(model)
    }

    fn validate(&self) -> Result<()> {
        for ch in &self.channels {
            if ch.src >= self.tasks.len() || ch.dst >= self.tasks.len() {
                return Err(Error::Model(format!(
                    "channel `{}` references a nonexistent task",
                    ch.name
                )));
            }
            if ch.tokens == 0 {
                return Err(Error::Model(format!(
                    "channel `{}` moves zero tokens",
                    ch.name
                )));
            }
            if ch.src == ch.dst {
                return Err(Error::Model(format!(
                    "channel `{}` is a self-loop",
                    ch.name
                )));
            }
        }
        // Acyclic topology (the executor runs one iteration topologically).
        self.topo_order()?;
        for (ti, t) in self.tasks.iter().enumerate() {
            let f = self.unit.function(&t.body_fn).ok_or_else(|| {
                Error::Model(format!("task `{}` body `{}` missing", t.name, t.body_fn))
            })?;
            let inputs = self.inputs(ti).len();
            let outputs = self.outputs(ti).len();
            if f.params.len() != inputs + outputs {
                return Err(Error::Model(format!(
                    "task `{}` has {} ports but `{}` takes {} parameters",
                    t.name,
                    inputs + outputs,
                    t.body_fn,
                    f.params.len()
                )));
            }
            if f.params.iter().any(|p| !matches!(p.ty, Type::Array(_))) {
                return Err(Error::Model(format!(
                    "task `{}` body parameters must all be arrays",
                    t.name
                )));
            }
        }
        Ok(())
    }

    /// Input channels of task `t` (channel indices, in declaration order).
    pub fn inputs(&self, t: usize) -> Vec<usize> {
        self.channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dst == t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Output channels of task `t`.
    pub fn outputs(&self, t: usize) -> Vec<usize> {
        self.channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.src == t)
            .map(|(i, _)| i)
            .collect()
    }

    /// A topological order of the tasks.
    ///
    /// # Errors
    ///
    /// [`Error::Model`] if the channel topology is cyclic.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        for c in &self.channels {
            indeg[c.dst] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&t) = queue.first() {
            queue.remove(0);
            order.push(t);
            for c in &self.channels {
                if c.src == t {
                    indeg[c.dst] -= 1;
                    if indeg[c.dst] == 0 {
                        queue.push(c.dst);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(Error::Model("channel topology is cyclic".into()));
        }
        Ok(order)
    }

    /// Task index by name.
    pub fn task_by_name(&self, name: &str) -> Option<usize> {
        self.tasks.iter().position(|t| t.name == name)
    }
}

/// Builds a CIC model automatically from a CSDF graph — Figure 2's
/// *"automatic code generation"* front end (`KPN/UML/Dataflow Model →
/// Common Intermediate Code`). Every actor becomes a task whose generated
/// body copies (and tags) tokens from its inputs to its outputs; rates are
/// taken from the first phase.
///
/// # Errors
///
/// [`Error::Model`] if the generated model fails validation (cannot happen
/// for well-formed graphs; kept for safety).
pub fn from_dataflow(graph: &mpsoc_dataflow::Graph) -> Result<CicModel> {
    use std::fmt::Write as _;
    let mut src = String::new();
    let mut tasks = Vec::new();
    let mut channels = Vec::new();
    for (ci, ch) in graph.channels().iter().enumerate() {
        channels.push(CicChannel {
            name: format!("ch{ci}"),
            src: ch.src.0,
            dst: ch.dst.0,
            tokens: ch.prod.first().copied().unwrap_or(1).max(1) as usize,
        });
    }
    for (ai, actor) in graph.actors().iter().enumerate() {
        let ins: Vec<usize> = channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dst == ai)
            .map(|(i, _)| i)
            .collect();
        let outs: Vec<usize> = channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.src == ai)
            .map(|(i, _)| i)
            .collect();
        let fn_name = format!("task_{}", actor.name);
        let mut params = Vec::new();
        for i in &ins {
            params.push(format!("int in{i}[]"));
        }
        for o in &outs {
            params.push(format!("int out{o}[]"));
        }
        let params = if params.is_empty() {
            "void".to_string()
        } else {
            params.join(", ")
        };
        let _ = writeln!(src, "void {fn_name}({params}) {{");
        // Body: out[k] = f(in[k]) elementwise; sources synthesise a ramp.
        for o in &outs {
            let n = channels[*o].tokens;
            if let Some(first_in) = ins.first() {
                let m = channels[*first_in].tokens;
                let _ = writeln!(
                    src,
                    "    for (k = 0; k < {n}; k = k + 1) {{ out{o}[k] = in{first_in}[k % {m}] + {ai}; }}"
                );
            } else {
                let _ = writeln!(
                    src,
                    "    for (k = 0; k < {n}; k = k + 1) {{ out{o}[k] = k * 7 + {ai}; }}"
                );
            }
        }
        src.push_str("}\n");
        tasks.push(CicTask {
            name: actor.name.clone(),
            body_fn: fn_name,
            period: match actor.kind {
                mpsoc_dataflow::ActorKind::Source { period }
                | mpsoc_dataflow::ActorKind::Sink { period } => Some(period),
                mpsoc_dataflow::ActorKind::Regular => None,
            },
            deadline: None,
            work: actor.wcet.iter().sum::<u64>().max(1),
        });
    }
    let unit = mpsoc_minic::parse(&src).map_err(|e| Error::Model(e.to_string()))?;
    CicModel::new(unit, tasks, channels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_minic::parse;

    fn two_task_model() -> CicModel {
        let unit = parse(
            "void produce(int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = k * k; } }\n\
             void consume(int in[], int res[]) { for (k = 0; k < 4; k = k + 1) { res[k] = in[k] + 1; } }\n\
             void drain(int in[]) { int x = in[0]; }",
        )
        .unwrap();
        CicModel::new(
            unit,
            vec![
                CicTask {
                    name: "prod".into(),
                    body_fn: "produce".into(),
                    period: Some(100),
                    deadline: None,
                    work: 50,
                },
                CicTask {
                    name: "cons".into(),
                    body_fn: "consume".into(),
                    period: None,
                    deadline: Some(500),
                    work: 80,
                },
                CicTask {
                    name: "sink".into(),
                    body_fn: "drain".into(),
                    period: None,
                    deadline: None,
                    work: 10,
                },
            ],
            vec![
                CicChannel {
                    name: "c0".into(),
                    src: 0,
                    dst: 1,
                    tokens: 4,
                },
                CicChannel {
                    name: "c1".into(),
                    src: 1,
                    dst: 2,
                    tokens: 4,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn valid_model_builds() {
        let m = two_task_model();
        assert_eq!(m.inputs(1), vec![0]);
        assert_eq!(m.outputs(0), vec![0]);
        assert_eq!(m.topo_order().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn missing_body_rejected() {
        let unit = parse("void f(int a[]) { a[0] = 1; }").unwrap();
        let r = CicModel::new(
            unit,
            vec![CicTask {
                name: "t".into(),
                body_fn: "nope".into(),
                period: None,
                deadline: None,
                work: 1,
            }],
            vec![],
        );
        assert!(matches!(r, Err(Error::Model(_))));
    }

    #[test]
    fn signature_mismatch_rejected() {
        let unit = parse("void f(int a[], int b[]) { a[0] = b[0]; }").unwrap();
        // Task has zero ports but body takes two params.
        let r = CicModel::new(
            unit,
            vec![CicTask {
                name: "t".into(),
                body_fn: "f".into(),
                period: None,
                deadline: None,
                work: 1,
            }],
            vec![],
        );
        assert!(r.is_err());
    }

    #[test]
    fn scalar_params_rejected() {
        let unit = parse("void f(int x) { x = 1; }").unwrap();
        let r = CicModel::new(
            unit,
            vec![
                CicTask {
                    name: "a".into(),
                    body_fn: "f".into(),
                    period: None,
                    deadline: None,
                    work: 1,
                },
                CicTask {
                    name: "b".into(),
                    body_fn: "f".into(),
                    period: None,
                    deadline: None,
                    work: 1,
                },
            ],
            vec![CicChannel {
                name: "c".into(),
                src: 0,
                dst: 1,
                tokens: 1,
            }],
        );
        assert!(r.is_err());
    }

    #[test]
    fn cyclic_topology_rejected() {
        let unit = parse("void f(int a[], int b[]) { b[0] = a[0]; }").unwrap();
        let t = |n: &str| CicTask {
            name: n.into(),
            body_fn: "f".into(),
            period: None,
            deadline: None,
            work: 1,
        };
        let r = CicModel::new(
            unit,
            vec![t("a"), t("b")],
            vec![
                CicChannel {
                    name: "c0".into(),
                    src: 0,
                    dst: 1,
                    tokens: 1,
                },
                CicChannel {
                    name: "c1".into(),
                    src: 1,
                    dst: 0,
                    tokens: 1,
                },
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn from_dataflow_generates_valid_model() {
        let mut g = mpsoc_dataflow::Graph::new();
        let s = g.add_actor(
            "src",
            vec![5],
            mpsoc_dataflow::ActorKind::Source { period: 100 },
        );
        let f = g.add_actor("fil", vec![20], mpsoc_dataflow::ActorKind::Regular);
        let k = g.add_actor(
            "snk",
            vec![5],
            mpsoc_dataflow::ActorKind::Sink { period: 100 },
        );
        g.add_channel(s, f, vec![2], vec![2], 0).unwrap();
        g.add_channel(f, k, vec![2], vec![2], 0).unwrap();
        let m = from_dataflow(&g).unwrap();
        assert_eq!(m.tasks.len(), 3);
        assert_eq!(m.channels.len(), 2);
        assert_eq!(m.tasks[0].period, Some(100));
        assert_eq!(m.channels[0].tokens, 2);
    }
}
