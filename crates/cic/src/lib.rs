//! # mpsoc-cic — the HOPES Common Intermediate Code flow (Section V)
//!
//! Seoul National University's HOPES design flow, as presented in
//! *"Programming MPSoC Platforms: Road Works Ahead!"* (DATE 2009,
//! Section V and Figure 2), raises embedded-software design productivity
//! through a *retargetable* parallel programming model: the Common
//! Intermediate Code (CIC). This crate implements the full flow:
//!
//! | Figure 2 stage | Module |
//! |---|---|
//! | KPN/UML/dataflow model → automatic CIC generation | [`model::from_dataflow`] |
//! | Manual CIC (task codes + channels, period/deadline annotations) | [`model`] |
//! | XML-style architecture information file | [`archfile`] |
//! | Task mapping (manual or automatic) | [`translator::auto_map`] |
//! | CIC translation to target-executable code + run-time synthesis | [`translator`] |
//! | Functional reference semantics | [`executor`] |
//!
//! The paper validates CIC by generating an H.264 encoder for the Cell
//! processor and the same spec for an ARM MPCore SMP; experiment E7
//! mirrors that with the built-in [`archfile::ArchInfo::cell_like`] and
//! [`archfile::ArchInfo::smp_like`] targets and proves the two translations
//! produce identical observable output.
//!
//! ## Quickstart
//!
//! ```
//! use mpsoc_cic::archfile::ArchInfo;
//! use mpsoc_cic::executor::execute;
//! use mpsoc_cic::translator::{auto_map, execute_translation, translate};
//! use mpsoc_cic::model::{CicChannel, CicModel, CicTask};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = mpsoc_minic::parse(
//!     "void gen(int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = k + 1; } }\n\
//!      void sum(int in[]) { int s = in[0] + in[1] + in[2] + in[3]; }",
//! )?;
//! let model = CicModel::new(
//!     unit,
//!     vec![
//!         CicTask { name: "gen".into(), body_fn: "gen".into(), period: Some(100), deadline: None, work: 10 },
//!         CicTask { name: "sum".into(), body_fn: "sum".into(), period: None, deadline: None, work: 5 },
//!     ],
//!     vec![CicChannel { name: "c".into(), src: 0, dst: 1, tokens: 4 }],
//! )?;
//! let reference = execute(&model, 2)?;
//! let arch = ArchInfo::cell_like(1);
//! let translation = translate(&model, &arch, &auto_map(&model, &arch)?)?;
//! assert_eq!(execute_translation(&model, &translation, 2)?.sinks, reference.sinks);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod archfile;
pub mod error;
pub mod executor;
pub mod explore;
pub mod model;
pub mod translator;

pub use crate::archfile::{parse_arch_file, ArchInfo, InterconnectKind, MemoryModel, PeInfo};
pub use crate::error::{Error, Result};
pub use crate::executor::{execute, RunOutput};
pub use crate::explore::{
    calibrate_task_work, explore, explore_parallel, explore_parallel_profiled, Candidate,
    Exploration,
};
pub use crate::model::{from_dataflow, CicChannel, CicModel, CicTask};
pub use crate::translator::{auto_map, execute_translation, translate, Op, PeProgram, Translation};
// The sweep machinery now lives in the shared exploration engine;
// re-export it so callers of the old private idiom have one canonical home.
pub use mpsoc_explore::{split_seeds, Sweep};
