//! MAPS error type.

use std::fmt;

/// Errors raised by the MAPS flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A named function/application/PE was not found.
    NotFound(String),
    /// Invalid parameters.
    Config(String),
    /// The mini-C front end rejected the input.
    FrontEnd(String),
    /// Mapping failed to satisfy a hard real-time constraint.
    Infeasible {
        /// The application that cannot meet its constraint.
        app: String,
        /// The latency achieved by the best mapping found.
        achieved: u64,
        /// The required latency.
        required: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(n) => write!(f, "`{n}` not found"),
            Error::Config(m) => write!(f, "invalid configuration: {m}"),
            Error::FrontEnd(m) => write!(f, "front end error: {m}"),
            Error::Infeasible {
                app,
                achieved,
                required,
            } => write!(
                f,
                "no mapping meets `{app}` latency {required} (best {achieved})"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<mpsoc_minic::Error> for Error {
    fn from(e: mpsoc_minic::Error) -> Self {
        Error::FrontEnd(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;
