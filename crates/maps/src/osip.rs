//! OSIP — the operating-system ASIP model.
//!
//! Section IV closes with MAPS' hardware-scheduler direction: *"in the
//! future MAPS will also support a dedicated task dispatching ASIP (OSIP,
//! operating system ASIP) in order to enable higher PE utilization via more
//! fine-grained tasks and low context switching overhead. Early evaluation
//! case studies exhibited great potential of the OSIP approach in lowering
//! the task-switching overhead, compared to an additional RISC performing
//! scheduling in a typical MPSoC environment."*
//!
//! Both schedulers are modelled as a central dispatcher that hands tasks to
//! PEs: dispatching is serialised at the dispatcher (one decision at a
//! time), and every task pays a context-switch cost on its PE. OSIP differs
//! from the software-RISC scheduler only in its constants — decisions in
//! tens of cycles instead of thousands — which is precisely what makes
//! fine-grained tasking viable. Experiment E6 sweeps task granularity.

use crate::error::{Error, Result};

/// The dispatcher implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hardware scheduling ASIP: fast decisions, tiny switch cost.
    Osip {
        /// Cycles per scheduling decision (serialised at the ASIP).
        dispatch_cycles: u64,
        /// Context-switch cycles paid on the receiving PE.
        switch_cycles: u64,
    },
    /// A RISC core running the scheduler in software.
    SoftwareRisc {
        /// Cycles per scheduling decision.
        dispatch_cycles: u64,
        /// Context-switch cycles paid on the receiving PE.
        switch_cycles: u64,
    },
}

impl SchedulerKind {
    /// Typical OSIP constants from the MAPS project's early evaluations
    /// (order of magnitude: decisions in ~50 cycles).
    pub fn typical_osip() -> Self {
        SchedulerKind::Osip {
            dispatch_cycles: 50,
            switch_cycles: 20,
        }
    }

    /// Typical software scheduler on an extra RISC (~2000-cycle decisions,
    /// full register-file context switches).
    pub fn typical_software() -> Self {
        SchedulerKind::SoftwareRisc {
            dispatch_cycles: 2_000,
            switch_cycles: 500,
        }
    }

    fn costs(self) -> (u64, u64) {
        match self {
            SchedulerKind::Osip {
                dispatch_cycles,
                switch_cycles,
            }
            | SchedulerKind::SoftwareRisc {
                dispatch_cycles,
                switch_cycles,
            } => (dispatch_cycles, switch_cycles),
        }
    }
}

/// Outcome of dispatching a task set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DispatchResult {
    /// Total cycles until the last task completes.
    pub makespan: u64,
    /// Aggregate PE utilisation: useful work / (makespan × PEs).
    pub utilization: f64,
    /// Cycles the dispatcher itself was busy.
    pub dispatcher_busy: u64,
}

/// Simulates dispatching `n_tasks` independent tasks of `task_cycles` each
/// onto `n_pes` PEs through the given scheduler.
///
/// The dispatcher issues decisions back-to-back; a PE receiving a task pays
/// the switch cost, runs the task, then waits for its next assignment.
///
/// # Errors
///
/// [`Error::Config`] on zero tasks, PEs, or task size.
pub fn dispatch(
    n_tasks: u64,
    task_cycles: u64,
    n_pes: usize,
    sched: SchedulerKind,
) -> Result<DispatchResult> {
    if n_tasks == 0 || n_pes == 0 || task_cycles == 0 {
        return Err(Error::Config(
            "tasks, PEs, and task size must be non-zero".into(),
        ));
    }
    let (dispatch_cycles, switch_cycles) = sched.costs();
    let mut pe_free = vec![0u64; n_pes];
    let mut dispatcher_free = 0u64;
    let mut makespan = 0u64;
    for _ in 0..n_tasks {
        // The dispatcher decides for the PE that frees earliest.
        let pe = pe_free
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .map(|(i, _)| i)
            .expect("n_pes > 0");
        // Decision can overlap PE execution but decisions serialise.
        let decided = dispatcher_free + dispatch_cycles;
        dispatcher_free = decided;
        let start = decided.max(pe_free[pe]) + switch_cycles;
        let end = start + task_cycles;
        pe_free[pe] = end;
        makespan = makespan.max(end);
    }
    let useful = n_tasks * task_cycles;
    Ok(DispatchResult {
        makespan,
        utilization: useful as f64 / (makespan * n_pes as u64) as f64,
        dispatcher_busy: n_tasks * dispatch_cycles,
    })
}

/// The task granularity (cycles) at which `sched` first sustains at least
/// `target` utilisation on `n_pes` PEs, or `None` within the probed range.
pub fn granularity_for_utilization(n_pes: usize, sched: SchedulerKind, target: f64) -> Option<u64> {
    let mut g = 1u64;
    while g <= 1 << 24 {
        if let Ok(r) = dispatch(10_000, g, n_pes, sched) {
            if r.utilization >= target {
                return Some(g);
            }
        }
        g *= 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_tasks_saturate_either_scheduler() {
        for sched in [
            SchedulerKind::typical_osip(),
            SchedulerKind::typical_software(),
        ] {
            let r = dispatch(1_000, 1_000_000, 4, sched).unwrap();
            assert!(r.utilization > 0.95, "{sched:?}: {r:?}");
        }
    }

    #[test]
    fn fine_tasks_collapse_software_scheduler_only() {
        let fine = 500; // cycles per task
        let osip = dispatch(10_000, fine, 4, SchedulerKind::typical_osip()).unwrap();
        let sw = dispatch(10_000, fine, 4, SchedulerKind::typical_software()).unwrap();
        assert!(
            osip.utilization > 2.0 * sw.utilization,
            "osip {} vs sw {}",
            osip.utilization,
            sw.utilization
        );
        assert!(sw.utilization < 0.3);
    }

    #[test]
    fn dispatcher_serialisation_bounds_throughput() {
        // 16 PEs, tiny tasks: the software dispatcher can feed at most one
        // task per 2000 cycles regardless of PE count.
        let r = dispatch(5_000, 100, 16, SchedulerKind::typical_software()).unwrap();
        assert!(r.makespan >= 5_000 * 2_000);
    }

    #[test]
    fn osip_enables_finer_granularity_at_same_utilization() {
        let g_osip = granularity_for_utilization(4, SchedulerKind::typical_osip(), 0.8).unwrap();
        let g_sw = granularity_for_utilization(4, SchedulerKind::typical_software(), 0.8).unwrap();
        assert!(
            g_osip * 8 <= g_sw,
            "osip granularity {g_osip} should be >=8x finer than software {g_sw}"
        );
    }

    #[test]
    fn utilization_in_unit_interval() {
        let r = dispatch(100, 1_000, 4, SchedulerKind::typical_osip()).unwrap();
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn validation() {
        assert!(dispatch(0, 1, 1, SchedulerKind::typical_osip()).is_err());
        assert!(dispatch(1, 0, 1, SchedulerKind::typical_osip()).is_err());
        assert!(dispatch(1, 1, 0, SchedulerKind::typical_osip()).is_err());
    }
}
