//! Per-PE code generation.
//!
//! The back end of Figure 1: *"a code generation phase translates the task
//! graphs into C codes for compilation onto the respective PEs with their
//! native compilers and OS primitives."* Given a coarsened task graph and a
//! mapping, [`generate`] emits one mini-C translation unit per PE: a task
//! function per assigned task (carrying the original statements) and a
//! `pe_main` that receives cross-PE inputs, invokes its tasks in schedule
//! order, and sends cross-PE outputs through OS channel primitives
//! (`ch_recv`/`ch_send`, left extern for the target OS).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mpsoc_minic::printer::print_stmt;
use mpsoc_minic::{Type, Unit};

use crate::arch::ArchModel;
use crate::error::{Error, Result};
use crate::mapping::Mapping;
use crate::taskgraph::TaskGraph;

/// Generated code for one PE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeCode {
    /// The PE name.
    pub pe: String,
    /// The generated mini-C source.
    pub source: String,
}

/// Generates per-PE mini-C sources for `graph` (extracted from `func` of
/// `unit`) under `mapping` on `arch`.
///
/// Channel identifiers are globally numbered per edge; only cross-PE edges
/// materialise as `ch_recv`/`ch_send` calls, local edges compile away — the
/// communication-synthesis step of the paper's flow.
///
/// # Errors
///
/// [`Error::NotFound`] if `func` is missing, [`Error::Config`] if the
/// mapping does not fit the graph/architecture.
pub fn generate(
    unit: &Unit,
    func: &str,
    graph: &TaskGraph,
    mapping: &Mapping,
    arch: &ArchModel,
) -> Result<Vec<PeCode>> {
    let f = unit
        .function(func)
        .ok_or_else(|| Error::NotFound(func.to_string()))?;
    if mapping.assignment.len() != graph.tasks.len() {
        return Err(Error::Config("mapping does not match graph".into()));
    }
    if mapping.assignment.iter().any(|&pe| pe >= arch.len()) {
        return Err(Error::Config("mapping references a nonexistent PE".into()));
    }

    let params = f
        .params
        .iter()
        .map(|p| match p.ty {
            Type::Int => format!("int {}", p.name),
            Type::Ptr => format!("int *{}", p.name),
            Type::Array(Some(n)) => format!("int {}[{n}]", p.name),
            Type::Array(None) => format!("int {}[]", p.name),
            Type::Void => format!("int {}", p.name),
        })
        .collect::<Vec<_>>()
        .join(", ");
    let args = f
        .params
        .iter()
        .map(|p| p.name.clone())
        .collect::<Vec<_>>()
        .join(", ");

    let mut per_pe: BTreeMap<usize, String> = BTreeMap::new();
    for slot in &mapping.schedule {
        let pe = slot.pe;
        let task = &graph.tasks[slot.task];
        let src = per_pe.entry(pe).or_default();
        // Task function with the original statements.
        let _ = writeln!(src, "void {}_{}({params}) {{", func, task.name);
        for &si in &task.stmts {
            if let Some(stmt) = f.body.get(si) {
                print_stmt(src, stmt, 1);
            }
        }
        src.push_str("}\n\n");
    }

    // pe_main per PE, in schedule order.
    let mut mains: BTreeMap<usize, String> = BTreeMap::new();
    let mut slots = mapping.schedule.clone();
    slots.sort_by_key(|s| (s.pe, s.start));
    for slot in &slots {
        let main = mains.entry(slot.pe).or_default();
        let task = &graph.tasks[slot.task];
        // Receive every cross-PE input first.
        for (ei, e) in graph.edges.iter().enumerate() {
            if e.to == slot.task && mapping.assignment[e.from] != slot.pe {
                let _ = writeln!(main, "    ch_recv({ei});");
            }
        }
        let _ = writeln!(main, "    {}_{}({args});", func, task.name);
        for (ei, e) in graph.edges.iter().enumerate() {
            if e.from == slot.task && mapping.assignment[e.to] != slot.pe {
                let _ = writeln!(main, "    ch_send({ei});");
            }
        }
    }

    let mut out = Vec::new();
    for (pe, mut src) in per_pe {
        let name = arch.pes()[pe].name.clone();
        let _ = writeln!(src, "void pe_main({params}) {{");
        src.push_str(mains.get(&pe).map(String::as_str).unwrap_or(""));
        src.push_str("}\n");
        out.push(PeCode {
            pe: name,
            source: src,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::list_schedule;
    use crate::taskgraph::{coarsen, extract_task_graph};
    use mpsoc_minic::cost::CostModel;
    use mpsoc_minic::parse;

    const SRC: &str = "void f(int a[], int b[]) {\n\
         int x = 1;\n\
         for (i = 0; i < 64; i = i + 1) { a[i] = i * x; }\n\
         for (j = 0; j < 64; j = j + 1) { b[j] = j + j; }\n\
         a[0] = a[1] + b[1];\n\
         }";

    fn setup() -> (mpsoc_minic::Unit, TaskGraph, Mapping, ArchModel) {
        let unit = parse(SRC).unwrap();
        let g = extract_task_graph(&unit, "f", &CostModel::default()).unwrap();
        let g = coarsen(&g, 3).unwrap();
        let arch = ArchModel::homogeneous(2);
        let m = list_schedule(&g, &arch).unwrap();
        (unit, g, m, arch)
    }

    #[test]
    fn generates_one_source_per_used_pe() {
        let (unit, g, m, arch) = setup();
        let codes = generate(&unit, "f", &g, &m, &arch).unwrap();
        let used: std::collections::BTreeSet<_> = m.assignment.iter().collect();
        assert_eq!(codes.len(), used.len());
    }

    #[test]
    fn generated_code_parses_as_minic() {
        let (unit, g, m, arch) = setup();
        for code in generate(&unit, "f", &g, &m, &arch).unwrap() {
            parse(&code.source).unwrap_or_else(|e| {
                panic!("PE `{}` code does not parse: {e}\n{}", code.pe, code.source)
            });
        }
    }

    #[test]
    fn cross_pe_edges_become_channel_calls() {
        let (unit, g, m, arch) = setup();
        let codes = generate(&unit, "f", &g, &m, &arch).unwrap();
        let crosses = g
            .edges
            .iter()
            .filter(|e| m.assignment[e.from] != m.assignment[e.to])
            .count();
        let sends: usize = codes
            .iter()
            .map(|c| c.source.matches("ch_send(").count())
            .sum();
        let recvs: usize = codes
            .iter()
            .map(|c| c.source.matches("ch_recv(").count())
            .sum();
        assert_eq!(sends, crosses);
        assert_eq!(recvs, crosses);
    }

    #[test]
    fn original_statements_survive() {
        let (unit, g, m, arch) = setup();
        let all: String = generate(&unit, "f", &g, &m, &arch)
            .unwrap()
            .into_iter()
            .map(|c| c.source)
            .collect();
        assert!(all.contains("a[i] = i * x;"));
        assert!(all.contains("b[j] = j + j;"));
    }

    #[test]
    fn validates_inputs() {
        let (unit, g, _m, arch) = setup();
        let bad = Mapping::default();
        assert!(generate(&unit, "f", &g, &bad, &arch).is_err());
        let (_u2, _g2, m2, arch2) = setup();
        assert!(generate(&unit, "nope", &g, &m2, &arch2).is_err());
    }
}
