//! Coarse target-architecture model.
//!
//! MAPS partitions and maps *"based on a coarse model of the target
//! architecture"* (Section IV): processing elements of different classes
//! with per-class execution efficiency, and a communication cost between
//! elements. The model is deliberately simple — class affinity factors and
//! a uniform interconnect cost — matching the granularity at which the real
//! tool makes its early decisions.

use crate::error::{Error, Result};

/// Processing-element classes of a heterogeneous MPSoC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PeClass {
    /// General-purpose RISC core.
    Risc,
    /// Digital signal processor.
    Dsp,
    /// Fixed-function/loosely programmable accelerator.
    Accelerator,
}

impl PeClass {
    /// All classes.
    pub const ALL: [PeClass; 3] = [PeClass::Risc, PeClass::Dsp, PeClass::Accelerator];
}

/// One processing element.
#[derive(Clone, Debug, PartialEq)]
pub struct Pe {
    /// Name, e.g. `"risc0"`.
    pub name: String,
    /// Class.
    pub class: PeClass,
    /// Relative speed (1.0 = reference RISC).
    pub speed: f64,
}

/// The coarse platform model.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchModel {
    pes: Vec<Pe>,
    /// Cycles to move one data unit between two distinct PEs.
    pub comm_cost_remote: u64,
    /// Cycles to move one data unit within a PE (pipelined locally).
    pub comm_cost_local: u64,
}

impl ArchModel {
    /// Creates a platform with the given PEs.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] if `pes` is empty or any speed is non-positive.
    pub fn new(pes: Vec<Pe>, comm_cost_remote: u64, comm_cost_local: u64) -> Result<Self> {
        if pes.is_empty() {
            return Err(Error::Config("need at least one PE".into()));
        }
        if let Some(p) = pes.iter().find(|p| p.speed <= 0.0) {
            return Err(Error::Config(format!(
                "PE `{}` has non-positive speed",
                p.name
            )));
        }
        Ok(ArchModel {
            pes,
            comm_cost_remote,
            comm_cost_local,
        })
    }

    /// A homogeneous platform of `n` RISC cores at speed 1.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn homogeneous(n: usize) -> Self {
        assert!(n > 0, "need at least one PE");
        ArchModel {
            pes: (0..n)
                .map(|i| Pe {
                    name: format!("risc{i}"),
                    class: PeClass::Risc,
                    speed: 1.0,
                })
                .collect(),
            comm_cost_remote: 10,
            comm_cost_local: 1,
        }
    }

    /// A typical wireless-terminal platform: `riscs` RISC cores, `dsps`
    /// DSPs (2× faster on DSP-friendly code), one accelerator.
    ///
    /// # Panics
    ///
    /// Panics if both counts are zero.
    pub fn wireless_terminal(riscs: usize, dsps: usize) -> Self {
        assert!(riscs + dsps > 0, "need at least one PE");
        let mut pes = Vec::new();
        for i in 0..riscs {
            pes.push(Pe {
                name: format!("risc{i}"),
                class: PeClass::Risc,
                speed: 1.0,
            });
        }
        for i in 0..dsps {
            pes.push(Pe {
                name: format!("dsp{i}"),
                class: PeClass::Dsp,
                speed: 1.0,
            });
        }
        pes.push(Pe {
            name: "accel0".into(),
            class: PeClass::Accelerator,
            speed: 1.0,
        });
        ArchModel {
            pes,
            comm_cost_remote: 10,
            comm_cost_local: 1,
        }
    }

    /// The PEs in index order.
    pub fn pes(&self) -> &[Pe] {
        &self.pes
    }

    /// Number of PEs.
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// Whether the platform has no PEs (never true for a built model).
    pub fn is_empty(&self) -> bool {
        self.pes.is_empty()
    }

    /// Cycles `pe` needs for a task of `cost` reference cycles whose
    /// preferred class is `pref` (`None` = class-neutral code).
    ///
    /// A task running on its preferred class executes at full efficiency;
    /// on a foreign class it pays an inefficiency factor (e.g. DSP kernels
    /// on a RISC take 3×; control code on a DSP takes 2×; anything not
    /// matched to an accelerator cannot exploit it and takes 5×).
    pub fn exec_cycles(&self, pe: usize, cost: u64, pref: Option<PeClass>) -> u64 {
        let p = &self.pes[pe];
        let factor = match (pref, p.class) {
            (None, PeClass::Accelerator) => 5.0,
            (None, _) => 1.0,
            (Some(want), have) if want == have => 1.0,
            (Some(PeClass::Dsp), PeClass::Risc) => 3.0,
            (Some(PeClass::Risc), PeClass::Dsp) => 2.0,
            (Some(PeClass::Accelerator), _) => 4.0,
            (Some(_), PeClass::Accelerator) => 5.0,
            (Some(_), _) => 2.0,
        };
        ((cost as f64 * factor) / p.speed).ceil() as u64
    }

    /// Cycles to transfer `units` data units from `from` to `to`.
    pub fn comm_cycles(&self, from: usize, to: usize, units: u64) -> u64 {
        if from == to {
            self.comm_cost_local * units
        } else {
            self.comm_cost_remote * units
        }
    }

    /// PE index by name.
    pub fn pe_by_name(&self, name: &str) -> Option<usize> {
        self.pes.iter().position(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_builder() {
        let a = ArchModel::homogeneous(4);
        assert_eq!(a.len(), 4);
        assert!(a.pes().iter().all(|p| p.class == PeClass::Risc));
    }

    #[test]
    fn class_affinity_changes_cost() {
        let a = ArchModel::wireless_terminal(2, 2);
        let risc = a.pe_by_name("risc0").unwrap();
        let dsp = a.pe_by_name("dsp0").unwrap();
        // DSP-preferring task: cheap on DSP, 3x on RISC.
        assert_eq!(a.exec_cycles(dsp, 100, Some(PeClass::Dsp)), 100);
        assert_eq!(a.exec_cycles(risc, 100, Some(PeClass::Dsp)), 300);
        // Neutral code on the accelerator is terrible.
        let acc = a.pe_by_name("accel0").unwrap();
        assert_eq!(a.exec_cycles(acc, 100, None), 500);
    }

    #[test]
    fn comm_cost_local_vs_remote() {
        let a = ArchModel::homogeneous(2);
        assert!(a.comm_cycles(0, 1, 10) > a.comm_cycles(0, 0, 10));
    }

    #[test]
    fn validation() {
        assert!(ArchModel::new(vec![], 1, 1).is_err());
        assert!(ArchModel::new(
            vec![Pe {
                name: "x".into(),
                class: PeClass::Risc,
                speed: 0.0
            }],
            1,
            1
        )
        .is_err());
    }

    #[test]
    fn speed_scales_execution() {
        let a = ArchModel::new(
            vec![
                Pe {
                    name: "slow".into(),
                    class: PeClass::Risc,
                    speed: 1.0,
                },
                Pe {
                    name: "fast".into(),
                    class: PeClass::Risc,
                    speed: 2.0,
                },
            ],
            10,
            1,
        )
        .unwrap();
        assert_eq!(a.exec_cycles(0, 100, None), 100);
        assert_eq!(a.exec_cycles(1, 100, None), 50);
    }
}
