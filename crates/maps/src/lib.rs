//! # mpsoc-maps — the MAPS semi-automatic parallelization flow (Section IV)
//!
//! RWTH Aachen's MAPS project, as summarised in *"Programming MPSoC
//! Platforms: Road Works Ahead!"* (DATE 2009, Section IV and Figure 1),
//! takes *"sequential C code"* through dataflow analysis, task-graph
//! formation, mapping onto a heterogeneous MPSoC, high-level simulation, and
//! per-PE code generation. This crate implements every stage of that figure:
//!
//! | Figure 1 stage | Module |
//! |---|---|
//! | Sequential code + annotations → fine-grained task graphs | [`taskgraph`] |
//! | Coarse architecture model (PE classes, comm costs) | [`arch`] |
//! | Concurrency graph → worst-case multi-app load | [`concurrency`] |
//! | Task-to-PE mapping (list scheduling, simulated annealing) | [`mapping`] |
//! | MAPS Virtual Platform (multi-application evaluation) | [`mvp`] |
//! | Per-PE C code generation with channel primitives | [`codegen`] |
//! | OSIP: hardware task dispatching vs. software RISC | [`osip`] |
//!
//! Experiments E5 (JPEG-style partitioning speedup) and E6 (OSIP
//! utilisation vs. granularity) build on this crate.
//!
//! ## Quickstart
//!
//! ```
//! use mpsoc_maps::arch::ArchModel;
//! use mpsoc_maps::mapping::list_schedule;
//! use mpsoc_maps::taskgraph::{coarsen, extract_task_graph};
//! use mpsoc_minic::cost::CostModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = mpsoc_minic::parse(
//!     "void f(int a[], int b[]) {\n\
//!      for (i = 0; i < 64; i = i + 1) { a[i] = i * 3; }\n\
//!      for (j = 0; j < 64; j = j + 1) { b[j] = j + 7; }\n\
//!      }",
//! )?;
//! let fine = extract_task_graph(&unit, "f", &CostModel::default())?;
//! let graph = coarsen(&fine, 2)?;
//! let mapping = list_schedule(&graph, &ArchModel::homogeneous(2))?;
//! // The two independent loops land on different cores.
//! assert_ne!(mapping.assignment[0], mapping.assignment[1]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod anno;
pub mod arch;
pub mod codegen;
pub mod concurrency;
pub mod error;
pub mod mapping;
pub mod mvp;
pub mod osip;
pub mod taskgraph;

pub use crate::anno::{take_annotations, Annotations};
pub use crate::arch::{ArchModel, Pe, PeClass};
pub use crate::error::{Error, Result};
pub use crate::mapping::{
    anneal, anneal_multi, anneal_multi_profiled, evaluate, list_schedule, profile_task_costs,
    Mapping, Slot,
};
pub use crate::mvp::{simulate_mvp, MvpApp, MvpResult, RtClass};
pub use crate::taskgraph::{coarsen, extract_task_graph, Task, TaskEdge, TaskGraph};
// The multi-start machinery now lives in the shared exploration engine;
// re-export it so callers of the old private idiom have one canonical home.
pub use mpsoc_explore::{split_seeds, Sweep};
