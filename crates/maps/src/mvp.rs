//! MVP — the MAPS Virtual Platform.
//!
//! Figure 1's evaluation stage: *"The resulting mapping can be exercised
//! and refined with a fast, high-level SystemC based simulation environment
//! (MAPS Virtual Platform, MVP), which has been designed to evaluate
//! different software settings specifically in a multi-application
//! scenario."*
//!
//! This MVP is a trace-free, event-driven multi-application simulator over
//! the coarse [`ArchModel`]: applications release jobs (instances of their
//! task graphs) periodically; tasks become ready when their predecessors
//! complete (plus communication latency) and compete for their assigned PE.
//! Per the paper, *"hard real-time applications are scheduled statically,
//! while soft and non-real-time applications are scheduled dynamically
//! according to their priority in best effort manner"* — here hard tasks
//! outrank every soft/best-effort task on a PE, soft tasks carry explicit
//! priorities, and best-effort tasks fill the gaps.

use crate::arch::ArchModel;
use crate::error::{Error, Result};
use crate::taskgraph::TaskGraph;
use mpsoc_obs::event::{Event, ObsCtx};
use mpsoc_obs::metrics::Counter;

/// Cached `mvp.*` counter handles (resolved once per simulation).
struct MvpMetrics {
    tasks_executed: Counter,
    jobs_completed: Counter,
    deadline_misses: Counter,
}

/// Real-time class of an application (the paper's annotation set: latency,
/// period, PE preferences are carried by the task graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtClass {
    /// Hard real-time: periodic with a deadline; statically prioritised
    /// above everything else.
    Hard {
        /// Release period in cycles.
        period: u64,
        /// Relative deadline in cycles.
        deadline: u64,
    },
    /// Soft real-time: periodic, scheduled by priority (higher wins).
    Soft {
        /// Release period in cycles.
        period: u64,
        /// Relative deadline in cycles (misses are counted, not fatal).
        deadline: u64,
        /// Priority among soft apps.
        priority: u8,
    },
    /// Best effort: a single job, lowest priority.
    BestEffort,
}

/// An application to simulate: a task graph, its PE assignment, and its
/// real-time class.
#[derive(Clone, Debug, PartialEq)]
pub struct MvpApp {
    /// Name.
    pub name: String,
    /// The (coarse) task graph.
    pub graph: TaskGraph,
    /// `assignment[task] = pe`.
    pub assignment: Vec<usize>,
    /// Real-time class.
    pub rt: RtClass,
    /// Jobs to release (periodic classes).
    pub jobs: usize,
}

/// Per-application outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppStats {
    /// Jobs released.
    pub released: usize,
    /// Jobs finishing within their deadline (best-effort jobs always
    /// count as met).
    pub met: usize,
    /// Jobs missing their deadline.
    pub missed: usize,
    /// Worst job latency (release to last task completion).
    pub worst_latency: u64,
    /// Sum of job latencies (mean = total / (met+missed)).
    pub total_latency: u64,
}

/// MVP simulation result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MvpResult {
    /// Per-app stats in input order.
    pub apps: Vec<AppStats>,
    /// Busy cycles per PE.
    pub pe_busy: Vec<u64>,
    /// Completion time of the last task.
    pub end_time: u64,
}

impl MvpResult {
    /// Utilisation of PE `pe` relative to the simulation end time.
    pub fn utilization(&self, pe: usize) -> f64 {
        if self.end_time == 0 {
            return 0.0;
        }
        self.pe_busy.get(pe).copied().unwrap_or(0) as f64 / self.end_time as f64
    }
}

#[derive(Clone, Debug)]
struct TaskInst {
    app: usize,
    job: usize,
    task: usize,
    preds_left: usize,
    ready: u64, // data-ready time (max over pred arrivals), valid when preds_left == 0
    done: bool,
}

/// Priority key: lower is more urgent.
fn prio(app: &MvpApp) -> (u8, u8) {
    match app.rt {
        RtClass::Hard { .. } => (0, 0),
        RtClass::Soft { priority, .. } => (1, u8::MAX - priority),
        RtClass::BestEffort => (2, 0),
    }
}

/// Runs the MVP simulation until all released jobs complete.
///
/// # Errors
///
/// [`Error::Config`] for assignment mismatches or a job/app set that cannot
/// make progress.
pub fn simulate_mvp(arch: &ArchModel, apps: &[MvpApp]) -> Result<MvpResult> {
    simulate_mvp_observed(arch, apps, &mut ObsCtx::none())
}

/// [`simulate_mvp`] with an observability context: every scheduled task
/// becomes a begin/end span on its PE's track (category `"maps"`, name
/// `app.task`), and the `mvp.tasks_executed` / `mvp.jobs_completed` /
/// `mvp.deadline_misses` counters are maintained. Timestamps are simulated
/// cycles. Passing [`ObsCtx::none`] is exactly [`simulate_mvp`].
///
/// # Errors
///
/// Same conditions as [`simulate_mvp`].
pub fn simulate_mvp_observed(
    arch: &ArchModel,
    apps: &[MvpApp],
    obs: &mut ObsCtx<'_>,
) -> Result<MvpResult> {
    let metrics = obs.metrics.map(|r| MvpMetrics {
        tasks_executed: r.counter("mvp.tasks_executed"),
        jobs_completed: r.counter("mvp.jobs_completed"),
        deadline_misses: r.counter("mvp.deadline_misses"),
    });
    for a in apps {
        if a.assignment.len() != a.graph.tasks.len() {
            return Err(Error::Config(format!(
                "app `{}` assignment does not match its graph",
                a.name
            )));
        }
        if a.assignment.iter().any(|&pe| pe >= arch.len()) {
            return Err(Error::Config(format!(
                "app `{}` assigned to a nonexistent PE",
                a.name
            )));
        }
        if a.jobs == 0 {
            return Err(Error::Config(format!("app `{}` has zero jobs", a.name)));
        }
    }
    let mut result = MvpResult {
        apps: vec![AppStats::default(); apps.len()],
        pe_busy: vec![0; arch.len()],
        end_time: 0,
    };

    // Instantiate every job's task instances up front.
    let mut insts: Vec<TaskInst> = Vec::new();
    let mut release: Vec<Vec<u64>> = Vec::new(); // per app, per job release time
    for (ai, app) in apps.iter().enumerate() {
        let period = match app.rt {
            RtClass::Hard { period, .. } | RtClass::Soft { period, .. } => period,
            RtClass::BestEffort => 0,
        };
        let mut rel = Vec::new();
        for j in 0..app.jobs {
            let r = j as u64 * period;
            rel.push(r);
            result.apps[ai].released += 1;
            for (ti, _t) in app.graph.tasks.iter().enumerate() {
                let preds = app.graph.preds(ti).count();
                insts.push(TaskInst {
                    app: ai,
                    job: j,
                    task: ti,
                    preds_left: preds,
                    ready: r,
                    done: false,
                });
            }
        }
        release.push(rel);
    }
    let mut job_end: Vec<Vec<u64>> = apps.iter().map(|a| vec![0u64; a.jobs]).collect();
    let mut job_left: Vec<Vec<usize>> = apps
        .iter()
        .map(|a| vec![a.graph.tasks.len(); a.jobs])
        .collect();

    let mut pe_free = vec![0u64; arch.len()];
    let mut remaining = insts.len();
    let mut guard = 0u64;
    while remaining > 0 {
        guard += 1;
        if guard > 10_000_000 {
            return Err(Error::Config("MVP simulation did not converge".into()));
        }
        // Candidate tasks: all preds done. Choose, per scheduling decision,
        // the globally next (PE, task) pair: the task whose start time
        // (max(ready, pe_free)) is smallest; ties by priority class, then
        // deterministic ids.
        let mut best: Option<(u64, (u8, u8), u64, usize)> = None; // (start, prio, ready, idx)
        for (i, inst) in insts.iter().enumerate() {
            if inst.done || inst.preds_left > 0 {
                continue;
            }
            let app = &apps[inst.app];
            let pe = app.assignment[inst.task];
            let start = inst.ready.max(pe_free[pe]);
            let key = (start, prio(app), inst.ready, i);
            if best.is_none_or(|b| key < (b.0, b.1, b.2, b.3)) {
                best = Some(key);
            }
        }
        let Some((_, _, _, idx)) = best else {
            return Err(Error::Config(
                "no runnable task but jobs remain (cyclic graph?)".into(),
            ));
        };
        let (ai, ji, ti) = (insts[idx].app, insts[idx].job, insts[idx].task);
        let app = &apps[ai];
        let pe = app.assignment[ti];
        let start = insts[idx].ready.max(pe_free[pe]);
        let dur = arch.exec_cycles(pe, app.graph.tasks[ti].cost, app.graph.tasks[ti].pref);
        let end = start + dur;
        pe_free[pe] = end;
        result.pe_busy[pe] += dur;
        result.end_time = result.end_time.max(end);
        insts[idx].done = true;
        remaining -= 1;
        if let Some(m) = &metrics {
            m.tasks_executed.inc();
        }
        obs.emit(|| {
            Event::begin(
                start,
                format!("{}.{}", app.name, app.graph.tasks[ti].name),
                "maps",
                pe as u32,
            )
            .with_arg("job", ji as u64)
        });
        obs.emit(|| {
            Event::end(
                end,
                format!("{}.{}", app.name, app.graph.tasks[ti].name),
                "maps",
                pe as u32,
            )
        });
        // Wake successors of this job.
        for e in app.graph.succs(ti) {
            let arrival = end + arch.comm_cycles(pe, app.assignment[e.to], e.volume);
            for other in insts.iter_mut() {
                if other.app == ai && other.job == ji && other.task == e.to && !other.done {
                    other.preds_left -= 1;
                    other.ready = other.ready.max(arrival);
                }
            }
        }
        // Job bookkeeping.
        job_end[ai][ji] = job_end[ai][ji].max(end);
        job_left[ai][ji] -= 1;
        if job_left[ai][ji] == 0 {
            let latency = job_end[ai][ji] - release[ai][ji];
            let stats = &mut result.apps[ai];
            stats.total_latency += latency;
            stats.worst_latency = stats.worst_latency.max(latency);
            let deadline = match app.rt {
                RtClass::Hard { deadline, .. } | RtClass::Soft { deadline, .. } => Some(deadline),
                RtClass::BestEffort => None,
            };
            match deadline {
                Some(d) if latency > d => {
                    stats.missed += 1;
                    if let Some(m) = &metrics {
                        m.deadline_misses.inc();
                    }
                    obs.emit(|| {
                        Event::instant(job_end[ai][ji], "deadline_miss", "maps", pe as u32)
                            .with_arg("latency", latency)
                    });
                }
                _ => stats.met += 1,
            }
            if let Some(m) = &metrics {
                m.jobs_completed.inc();
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::{Task, TaskEdge};

    fn chain(costs: &[u64]) -> TaskGraph {
        TaskGraph {
            tasks: costs
                .iter()
                .enumerate()
                .map(|(i, &c)| Task {
                    name: format!("t{i}"),
                    cost: c,
                    pref: None,
                    stmts: vec![i],
                })
                .collect(),
            edges: (1..costs.len())
                .map(|i| TaskEdge {
                    from: i - 1,
                    to: i,
                    volume: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn single_app_latency_matches_schedule() {
        let arch = ArchModel::homogeneous(2);
        let apps = vec![MvpApp {
            name: "a".into(),
            graph: chain(&[10, 20, 30]),
            assignment: vec![0, 0, 0],
            rt: RtClass::Hard {
                period: 1_000,
                deadline: 100,
            },
            jobs: 1,
        }];
        let r = simulate_mvp(&arch, &apps).unwrap();
        assert_eq!(r.apps[0].met, 1);
        // 10+20+30 with local comm 1 per hop = <= 62.
        assert!(r.apps[0].worst_latency <= 62);
    }

    #[test]
    fn pipelined_jobs_overlap_across_pes() {
        let arch = ArchModel::homogeneous(2);
        // Two-stage pipeline split over two PEs: jobs overlap, so 10 jobs
        // take ~ 10 periods of the slower stage, not 10x the sum.
        let apps = vec![MvpApp {
            name: "stream".into(),
            graph: chain(&[100, 100]),
            assignment: vec![0, 1],
            rt: RtClass::Soft {
                period: 110,
                deadline: 400,
                priority: 1,
            },
            jobs: 10,
        }];
        let r = simulate_mvp(&arch, &apps).unwrap();
        assert_eq!(r.apps[0].missed, 0);
        // Serial would be 10 * 200 = 2000; pipelined ~ 1100 + tail.
        assert!(r.end_time < 1_500, "end {}", r.end_time);
    }

    #[test]
    fn hard_app_preempts_best_effort_in_queueing() {
        let arch = ArchModel::homogeneous(1);
        let apps = vec![
            MvpApp {
                name: "be".into(),
                graph: chain(&[500]),
                assignment: vec![0],
                rt: RtClass::BestEffort,
                jobs: 1,
            },
            MvpApp {
                name: "hard".into(),
                graph: chain(&[50]),
                assignment: vec![0],
                rt: RtClass::Hard {
                    period: 1_000,
                    deadline: 100,
                },
                jobs: 1,
            },
        ];
        let r = simulate_mvp(&arch, &apps).unwrap();
        // Both ready at 0 on the same PE: the hard app must run first.
        assert_eq!(r.apps[1].met, 1);
        assert!(r.apps[1].worst_latency <= 100);
    }

    #[test]
    fn soft_priority_orders_contending_apps() {
        let arch = ArchModel::homogeneous(1);
        let mk = |prio: u8| MvpApp {
            name: format!("p{prio}"),
            graph: chain(&[100]),
            assignment: vec![0],
            rt: RtClass::Soft {
                period: 1_000,
                deadline: 150,
                priority: prio,
            },
            jobs: 1,
        };
        let r = simulate_mvp(&arch, &[mk(1), mk(9)]).unwrap();
        // Higher priority (9) meets; lower (1) runs second and misses.
        assert_eq!(r.apps[1].met, 1);
        assert_eq!(r.apps[0].missed, 1);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let arch = ArchModel::homogeneous(2);
        let apps = vec![MvpApp {
            name: "a".into(),
            graph: chain(&[100]),
            assignment: vec![0],
            rt: RtClass::BestEffort,
            jobs: 1,
        }];
        let r = simulate_mvp(&arch, &apps).unwrap();
        assert!((r.utilization(0) - 1.0).abs() < 1e-9);
        assert_eq!(r.utilization(1), 0.0);
    }

    #[test]
    fn validation() {
        let arch = ArchModel::homogeneous(1);
        let bad = MvpApp {
            name: "x".into(),
            graph: chain(&[1, 2]),
            assignment: vec![0],
            rt: RtClass::BestEffort,
            jobs: 1,
        };
        assert!(simulate_mvp(&arch, &[bad]).is_err());
        let bad_pe = MvpApp {
            name: "y".into(),
            graph: chain(&[1]),
            assignment: vec![5],
            rt: RtClass::BestEffort,
            jobs: 1,
        };
        assert!(simulate_mvp(&arch, &[bad_pe]).is_err());
    }
}
