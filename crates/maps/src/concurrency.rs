//! Multi-application concurrency graphs.
//!
//! MAPS targets *"multiple applications at a time"*: *"a concurrency graph
//! is used to capture potential parallelism between applications, in order
//! to derive the worst case computational loads"* (Section IV). Nodes are
//! applications; an edge says the two applications may be active
//! simultaneously (e.g. a phone call while the browser renders). The worst
//! case load is the heaviest set of pairwise-concurrent applications — a
//! maximum-weight clique, which is small-n exact here (wireless terminals
//! run a handful of apps).

use std::collections::BTreeSet;

use crate::error::{Error, Result};

/// An application node with its computational load (reference cycles per
/// period, or any consistent unit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppNode {
    /// Application name.
    pub name: String,
    /// Worst-case computational load.
    pub load: u64,
}

/// The concurrency graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConcurrencyGraph {
    apps: Vec<AppNode>,
    edges: BTreeSet<(usize, usize)>,
}

impl ConcurrencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an application; returns its index.
    pub fn add_app(&mut self, name: impl Into<String>, load: u64) -> usize {
        self.apps.push(AppNode {
            name: name.into(),
            load,
        });
        self.apps.len() - 1
    }

    /// Declares that applications `a` and `b` may run concurrently.
    ///
    /// # Errors
    ///
    /// [`Error::NotFound`] for out-of-range indices, [`Error::Config`] for
    /// a self-edge.
    pub fn add_concurrent(&mut self, a: usize, b: usize) -> Result<()> {
        if a == b {
            return Err(Error::Config(
                "an app is trivially concurrent with itself".into(),
            ));
        }
        if a >= self.apps.len() || b >= self.apps.len() {
            return Err(Error::NotFound(format!("app {}", a.max(b))));
        }
        self.edges.insert((a.min(b), a.max(b)));
        Ok(())
    }

    /// The applications.
    pub fn apps(&self) -> &[AppNode] {
        &self.apps
    }

    /// Whether `a` and `b` may overlap.
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// The worst-case simultaneous load and the app set realising it
    /// (maximum-weight clique, exact via branch and bound).
    pub fn worst_case_load(&self) -> (u64, Vec<usize>) {
        let n = self.apps.len();
        let mut best: (u64, Vec<usize>) = (0, Vec::new());
        let mut current: Vec<usize> = Vec::new();
        self.extend_clique(&mut current, 0, 0, &mut best);
        let _ = n;
        best
    }

    fn extend_clique(
        &self,
        current: &mut Vec<usize>,
        start: usize,
        load: u64,
        best: &mut (u64, Vec<usize>),
    ) {
        if load > best.0 {
            *best = (load, current.clone());
        }
        for cand in start..self.apps.len() {
            if current.iter().all(|&m| self.concurrent(m, cand)) {
                current.push(cand);
                self.extend_clique(current, cand + 1, load + self.apps[cand].load, best);
                current.pop();
            }
        }
    }

    /// The minimum platform capacity (same unit as loads) that survives the
    /// worst case with `headroom` (e.g. 1.2 = 20 % margin).
    pub fn required_capacity(&self, headroom: f64) -> u64 {
        (self.worst_case_load().0 as f64 * headroom).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Phone scenario: call+mp3 never overlap browser+video fully.
    fn phone() -> ConcurrencyGraph {
        let mut g = ConcurrencyGraph::new();
        let call = g.add_app("voice_call", 30);
        let mp3 = g.add_app("mp3", 20);
        let browser = g.add_app("browser", 40);
        let video = g.add_app("video", 80);
        g.add_concurrent(call, browser).unwrap();
        g.add_concurrent(mp3, browser).unwrap();
        g.add_concurrent(browser, video).unwrap();
        g.add_concurrent(call, mp3).unwrap();
        g
    }

    #[test]
    fn worst_case_is_max_weight_clique() {
        let g = phone();
        let (load, set) = g.worst_case_load();
        // Cliques: {call,mp3,?} call+mp3=50 (browser? call-browser yes,
        // mp3-browser yes => {call,mp3,browser}=90); {browser,video}=120.
        assert_eq!(load, 120);
        assert_eq!(set, vec![2, 3]);
    }

    #[test]
    fn triangle_clique_found() {
        let mut g = ConcurrencyGraph::new();
        let a = g.add_app("a", 10);
        let b = g.add_app("b", 11);
        let c = g.add_app("c", 12);
        g.add_concurrent(a, b).unwrap();
        g.add_concurrent(b, c).unwrap();
        g.add_concurrent(a, c).unwrap();
        assert_eq!(g.worst_case_load().0, 33);
    }

    #[test]
    fn isolated_apps_do_not_sum() {
        let mut g = ConcurrencyGraph::new();
        g.add_app("a", 50);
        g.add_app("b", 60);
        assert_eq!(g.worst_case_load().0, 60);
    }

    #[test]
    fn capacity_includes_headroom() {
        let g = phone();
        assert_eq!(g.required_capacity(1.5), 180);
    }

    #[test]
    fn validation() {
        let mut g = ConcurrencyGraph::new();
        let a = g.add_app("a", 1);
        assert!(g.add_concurrent(a, a).is_err());
        assert!(g.add_concurrent(a, 5).is_err());
    }
}
