//! Lightweight C-extension annotations.
//!
//! Section IV: *"using some lightweight C extensions, real-time properties
//! such as latency and period as well as preferred PE types can be
//! optionally annotated."* In mini-C the extensions are intrinsic calls at
//! the top of a function body:
//!
//! ```c
//! void decoder(int in[], int out[]) {
//!     maps_period(1000);       // release period in cycles
//!     maps_latency(800);       // end-to-end latency bound
//!     maps_prefer_dsp();       // preferred PE class
//!     ...
//! }
//! ```
//!
//! [`take_annotations`] extracts them *and removes the calls from the
//! body*, so the dependence analysis and partitioner see pure application
//! code (an intrinsic call would otherwise be a conservative `World`
//! barrier).

use mpsoc_minic::{Expr, StmtKind, Unit};

use crate::arch::PeClass;
use crate::error::{Error, Result};

/// The annotation set of one application function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Annotations {
    /// Release period in cycles (`maps_period(n)`).
    pub period: Option<u64>,
    /// End-to-end latency bound in cycles (`maps_latency(n)`).
    pub latency: Option<u64>,
    /// Preferred PE class (`maps_prefer_dsp()` / `maps_prefer_risc()` /
    /// `maps_prefer_accel()`).
    pub pref: Option<PeClass>,
}

/// Extracts and strips the annotation intrinsics from `func`.
///
/// # Errors
///
/// [`Error::NotFound`] if the function is missing; [`Error::Config`] for a
/// malformed intrinsic (wrong arity or non-constant argument).
pub fn take_annotations(unit: &mut Unit, func: &str) -> Result<Annotations> {
    let f = unit
        .function_mut(func)
        .ok_or_else(|| Error::NotFound(func.to_string()))?;
    let mut anno = Annotations::default();
    let mut keep = Vec::with_capacity(f.body.len());
    for stmt in f.body.drain(..) {
        let handled = match &stmt.kind {
            StmtKind::ExprStmt(Expr::Call(name, args)) => match name.as_str() {
                "maps_period" | "maps_latency" => {
                    let [arg] = args.as_slice() else {
                        return Err(Error::Config(format!("`{name}` takes one argument")));
                    };
                    let v = arg.const_eval().ok_or_else(|| {
                        Error::Config(format!("`{name}` needs a constant argument"))
                    })?;
                    let v = u64::try_from(v).map_err(|_| {
                        Error::Config(format!("`{name}` argument must be non-negative"))
                    })?;
                    if name == "maps_period" {
                        anno.period = Some(v);
                    } else {
                        anno.latency = Some(v);
                    }
                    true
                }
                "maps_prefer_dsp" => {
                    anno.pref = Some(PeClass::Dsp);
                    true
                }
                "maps_prefer_risc" => {
                    anno.pref = Some(PeClass::Risc);
                    true
                }
                "maps_prefer_accel" => {
                    anno.pref = Some(PeClass::Accelerator);
                    true
                }
                _ => false,
            },
            _ => false,
        };
        if !handled {
            keep.push(stmt);
        }
    }
    f.body = keep;
    Ok(anno)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::extract_task_graph;
    use mpsoc_minic::cost::CostModel;
    use mpsoc_minic::parse;

    const SRC: &str = "void app(int n, int out[]) {\n\
         maps_period(1000);\n\
         maps_latency(800);\n\
         maps_prefer_dsp();\n\
         for (i = 0; i < 32; i = i + 1) { out[i] = i * 2; }\n\
         for (i = 0; i < 32; i = i + 1) { out[i] = out[i] + 1; }\n\
         }";

    #[test]
    fn annotations_extracted_and_stripped() {
        let mut u = parse(SRC).unwrap();
        let a = take_annotations(&mut u, "app").unwrap();
        assert_eq!(a.period, Some(1000));
        assert_eq!(a.latency, Some(800));
        assert_eq!(a.pref, Some(PeClass::Dsp));
        assert_eq!(u.functions[0].body.len(), 2, "intrinsics removed");
    }

    #[test]
    fn stripped_body_is_analyzable() {
        let mut u = parse(SRC).unwrap();
        // Without stripping, the intrinsic calls are World barriers that
        // serialize everything.
        let before = extract_task_graph(&u, "app", &CostModel::default()).unwrap();
        assert!(!before.edges.is_empty());
        take_annotations(&mut u, "app").unwrap();
        let after = extract_task_graph(&u, "app", &CostModel::default()).unwrap();
        // The two loops remain ordered by the out[] flow dependence only.
        assert_eq!(after.tasks.len(), 2);
        assert!(after.edges.iter().all(|e| e.from == 0 && e.to == 1));
    }

    #[test]
    fn unannotated_function_yields_defaults() {
        let mut u = parse("void f(void) { return; }").unwrap();
        let a = take_annotations(&mut u, "f").unwrap();
        assert_eq!(a, Annotations::default());
    }

    #[test]
    fn malformed_intrinsics_rejected() {
        let mut u = parse("void f(int x) { maps_period(); }").unwrap();
        assert!(take_annotations(&mut u, "f").is_err());
        let mut u = parse("void f(int x) { maps_period(x); }").unwrap();
        assert!(take_annotations(&mut u, "f").is_err());
        let mut u = parse("void f(void) { maps_latency(0 - 5); }").unwrap();
        assert!(take_annotations(&mut u, "f").is_err());
    }

    #[test]
    fn unknown_calls_left_alone() {
        let mut u = parse("void f(void) { helper(); }").unwrap();
        take_annotations(&mut u, "f").unwrap();
        assert_eq!(u.functions[0].body.len(), 1);
    }

    #[test]
    fn missing_function_reported() {
        let mut u = parse("void f(void) { return; }").unwrap();
        assert!(take_annotations(&mut u, "nope").is_err());
    }
}
