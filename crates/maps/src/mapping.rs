//! Task-to-PE mapping: list scheduling and simulated-annealing refinement.
//!
//! Figure 1's middle stage: *"Using optimization algorithms, the task graphs
//! are mapped to the target architecture, taking into account real-time
//! requirements and preferred PE classes."* Two optimizers are provided —
//! a HEFT-style list scheduler (fast, deterministic) and a seeded
//! simulated-annealing refinement (slower, usually better on irregular
//! graphs); the E5 ablation bench compares them.

use crate::arch::ArchModel;
use crate::error::{Error, Result};
use crate::taskgraph::TaskGraph;

/// One scheduled task instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Task index.
    pub task: usize,
    /// Assigned PE.
    pub pe: usize,
    /// Start cycle.
    pub start: u64,
    /// End cycle.
    pub end: u64,
}

/// A complete mapping: assignment plus its static schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Mapping {
    /// `assignment[task] = pe`.
    pub assignment: Vec<usize>,
    /// The static schedule (hard-RT applications run exactly this).
    pub schedule: Vec<Slot>,
    /// Schedule makespan in cycles.
    pub makespan: u64,
}

/// Evaluates `assignment` by topological list scheduling: every task starts
/// as soon as its PE is free and all predecessor data has arrived
/// (communication is charged between distinct PEs).
///
/// # Errors
///
/// [`Error::Config`] if the assignment length does not match the graph or
/// references a nonexistent PE.
pub fn evaluate(graph: &TaskGraph, arch: &ArchModel, assignment: &[usize]) -> Result<Mapping> {
    if assignment.len() != graph.tasks.len() {
        return Err(Error::Config(format!(
            "assignment of {} tasks for graph of {}",
            assignment.len(),
            graph.tasks.len()
        )));
    }
    if let Some(&pe) = assignment.iter().find(|&&pe| pe >= arch.len()) {
        return Err(Error::Config(format!("assignment references PE {pe}")));
    }
    let n = graph.tasks.len();
    let mut pe_free = vec![0u64; arch.len()];
    let mut end = vec![0u64; n];
    let mut schedule = Vec::with_capacity(n);
    // Tasks are topologically ordered by construction of TaskGraph.
    for t in 0..n {
        let pe = assignment[t];
        let mut ready = 0u64;
        for e in graph.preds(t) {
            let arrival = end[e.from] + arch.comm_cycles(assignment[e.from], pe, e.volume);
            ready = ready.max(arrival);
        }
        let start = ready.max(pe_free[pe]);
        let dur = arch.exec_cycles(pe, graph.tasks[t].cost, graph.tasks[t].pref);
        let finish = start + dur;
        pe_free[pe] = finish;
        end[t] = finish;
        schedule.push(Slot {
            task: t,
            pe,
            start,
            end: finish,
        });
    }
    Ok(Mapping {
        assignment: assignment.to_vec(),
        makespan: end.into_iter().max().unwrap_or(0),
        schedule,
    })
}

/// HEFT-style list scheduling: tasks in decreasing upward rank, each
/// assigned to the PE that minimises its earliest finish time.
///
/// # Errors
///
/// Propagates [`evaluate`] errors (internal bug guard only — inputs are
/// validated up front).
pub fn list_schedule(graph: &TaskGraph, arch: &ArchModel) -> Result<Mapping> {
    if graph.tasks.is_empty() {
        return Ok(Mapping::default());
    }
    let n = graph.tasks.len();
    // Average execution cost across PEs for ranking.
    let avg_cost: Vec<f64> = graph
        .tasks
        .iter()
        .map(|t| {
            (0..arch.len())
                .map(|pe| arch.exec_cycles(pe, t.cost, t.pref) as f64)
                .sum::<f64>()
                / arch.len() as f64
        })
        .collect();
    // Upward rank (computed in reverse topological order).
    let mut rank = vec![0f64; n];
    for t in (0..n).rev() {
        let succ_max = graph
            .succs(t)
            .map(|e| e.volume as f64 * arch.comm_cost_remote as f64 + rank[e.to])
            .fold(0f64, f64::max);
        rank[t] = avg_cost[t] + succ_max;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rank[b].partial_cmp(&rank[a]).expect("ranks are finite"));

    // Greedy EFT assignment. We must still respect topological readiness,
    // so track end times as tasks get placed; rank order is a topological
    // order for DAGs with positive costs.
    let mut assignment = vec![usize::MAX; n];
    let mut pe_free = vec![0u64; arch.len()];
    let mut end = vec![0u64; n];
    for &t in &order {
        let mut best: Option<(u64, usize, u64)> = None; // (finish, pe, start)
        for (pe, &free) in pe_free.iter().enumerate() {
            let mut ready = 0u64;
            for e in graph.preds(t) {
                // Unplaced predecessors (possible under rank ties) are
                // treated optimistically as local.
                let (pend, ppe) = if assignment[e.from] == usize::MAX {
                    (0, pe)
                } else {
                    (end[e.from], assignment[e.from])
                };
                ready = ready.max(pend + arch.comm_cycles(ppe, pe, e.volume));
            }
            let start = ready.max(free);
            let finish = start + arch.exec_cycles(pe, graph.tasks[t].cost, graph.tasks[t].pref);
            if best.is_none_or(|(bf, _, _)| finish < bf) {
                best = Some((finish, pe, start));
            }
        }
        let (finish, pe, _start) = best.expect("at least one PE");
        assignment[t] = pe;
        pe_free[pe] = finish;
        end[t] = finish;
    }
    evaluate(graph, arch, &assignment)
}

/// Deterministic simulated annealing over assignments, starting from the
/// list schedule.
///
/// `seed` drives the internal PRNG; `iters` bounds the moves examined.
///
/// # Errors
///
/// Propagates validation errors from [`evaluate`].
pub fn anneal(graph: &TaskGraph, arch: &ArchModel, seed: u64, iters: u64) -> Result<Mapping> {
    anneal_observed(
        graph,
        arch,
        seed,
        iters,
        &mut mpsoc_obs::event::ObsCtx::none(),
    )
}

/// [`anneal`] with an observability context: bumps the
/// `maps.candidates_evaluated` and `maps.moves_accepted` counters and emits
/// an `"improved"` instant (category `"maps"`, move index as timestamp,
/// makespan as the argument) whenever a move beats the best mapping so far.
/// Passing [`mpsoc_obs::event::ObsCtx::none`] is exactly [`anneal`].
///
/// # Errors
///
/// Propagates validation errors from [`evaluate`].
pub fn anneal_observed(
    graph: &TaskGraph,
    arch: &ArchModel,
    seed: u64,
    iters: u64,
    obs: &mut mpsoc_obs::event::ObsCtx<'_>,
) -> Result<Mapping> {
    let metrics = obs.metrics.map(|r| {
        (
            r.counter("maps.candidates_evaluated"),
            r.counter("maps.moves_accepted"),
        )
    });
    let mut current = list_schedule(graph, arch)?;
    if graph.tasks.is_empty() || arch.len() < 2 {
        return Ok(current);
    }
    let mut best = current.clone();
    let mut rng = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        | 1;
    let mut next = || {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        rng.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let t0 = (current.makespan as f64 / 10.0).max(1.0);
    for i in 0..iters {
        let temp = t0 * (1.0 - i as f64 / iters as f64) + 1e-9;
        let task = (next() % graph.tasks.len() as u64) as usize;
        let new_pe = (next() % arch.len() as u64) as usize;
        if current.assignment[task] == new_pe {
            continue;
        }
        let mut trial = current.assignment.clone();
        trial[task] = new_pe;
        let cand = evaluate(graph, arch, &trial)?;
        if let Some((evaluated, _)) = &metrics {
            evaluated.inc();
        }
        let delta = cand.makespan as f64 - current.makespan as f64;
        let accept = delta <= 0.0 || {
            let p = (-delta / temp).exp();
            (next() % 1_000_000) as f64 / 1_000_000.0 < p
        };
        if accept {
            if let Some((_, accepted)) = &metrics {
                accepted.inc();
            }
            current = cand;
            if current.makespan < best.makespan {
                best = current.clone();
                obs.emit(|| {
                    mpsoc_obs::event::Event::instant(i, "improved", "maps", 0)
                        .with_arg("makespan", best.makespan)
                });
            }
        }
    }
    Ok(best)
}

/// Deterministic multi-start annealing, optionally parallel.
///
/// Runs `starts` independent [`anneal`] restarts. Restart `i` is seeded
/// with the `i`-th [`mpsoc_explore::split_seeds`] split of `seed`, so each
/// restart's search trajectory is a pure function of `(seed, i)`. The
/// restarts fan out through the shared [`mpsoc_explore::Sweep`] engine and
/// merge by **fixed `(makespan, restart index)` order** — the earliest
/// restart wins ties — so the returned mapping is bit-identical for any
/// `threads >= 1`, including the serial reference `threads == 1`.
///
/// # Errors
///
/// Propagates the first (by restart index) validation error from
/// [`evaluate`]; [`Error::Config`] if `starts` is zero.
pub fn anneal_multi(
    graph: &TaskGraph,
    arch: &ArchModel,
    seed: u64,
    iters: u64,
    starts: usize,
    threads: usize,
) -> Result<Mapping> {
    if starts == 0 {
        return Err(Error::Config(
            "anneal_multi needs at least one start".into(),
        ));
    }
    let seeds = mpsoc_explore::split_seeds(seed, starts);
    let results =
        mpsoc_explore::Sweep::new(threads).run(starts, |i| anneal(graph, arch, seeds[i], iters));

    // Deterministic merge: walk restarts in index order, keep the first
    // mapping achieving the smallest makespan. Thread count only changed
    // *where* each restart ran, never its result or its merge rank.
    let mut best: Option<Mapping> = None;
    for r in results {
        let m = r?;
        if best.as_ref().is_none_or(|b| m.makespan < b.makespan) {
            best = Some(m);
        }
    }
    Ok(best.expect("starts >= 1"))
}

/// Re-costs `graph` from measured profile data on a simulated platform.
///
/// The platform is positioned at the region of interest via `prefix` —
/// either re-simulated from scratch or restored from a snapshot
/// ([`PrefixSource::Warm`], the warm start) — and the word at
/// `profile_addr + t` is read for every task `t`. A positive word replaces
/// the task's static cost estimate; zero or negative words (no measurement)
/// leave the estimate untouched. Because a snapshot restore is
/// bit-identical to having simulated the prefix, warm and cold sources
/// yield the same re-costed graph.
///
/// # Errors
///
/// [`Error::Config`] when the prefix cannot be materialized or a profile
/// word is outside the platform's address map.
///
/// [`PrefixSource::Warm`]: mpsoc_platform::PrefixSource::Warm
pub fn profile_task_costs(
    graph: &TaskGraph,
    prefix: &mpsoc_platform::PrefixSource<'_>,
    profile_addr: u32,
) -> Result<TaskGraph> {
    let p = prefix
        .materialize()
        .map_err(|e| Error::Config(format!("profile prefix: {e}")))?;
    let mut profiled = graph.clone();
    for (t, task) in profiled.tasks.iter_mut().enumerate() {
        let addr = profile_addr
            .checked_add(t as u32)
            .ok_or_else(|| Error::Config("profile address overflow".into()))?;
        let w = p
            .debug_read(addr)
            .map_err(|e| Error::Config(format!("profile word for task {t}: {e}")))?;
        if w > 0 {
            task.cost = w as u64;
        }
    }
    Ok(profiled)
}

/// [`anneal_multi`] over a profile-re-costed graph (see
/// [`profile_task_costs`]): the exploration's cost model comes from
/// measurements taken on a platform at the region of interest instead of
/// static estimates. Passing a captured snapshot as `prefix`
/// ([`PrefixSource::Warm`]) skips re-simulating the prefix entirely — the
/// snapshot warm start — while returning a mapping bit-identical to the
/// cold path at every `threads` value.
///
/// # Errors
///
/// As [`profile_task_costs`] and [`anneal_multi`].
///
/// [`PrefixSource::Warm`]: mpsoc_platform::PrefixSource::Warm
#[allow(clippy::too_many_arguments)]
pub fn anneal_multi_profiled(
    graph: &TaskGraph,
    arch: &ArchModel,
    seed: u64,
    iters: u64,
    starts: usize,
    threads: usize,
    prefix: &mpsoc_platform::PrefixSource<'_>,
    profile_addr: u32,
) -> Result<Mapping> {
    let profiled = profile_task_costs(graph, prefix, profile_addr)?;
    anneal_multi(&profiled, arch, seed, iters, starts, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::PeClass;
    use crate::taskgraph::{Task, TaskEdge};

    fn diamond(costs: [u64; 4]) -> TaskGraph {
        TaskGraph {
            tasks: costs
                .iter()
                .enumerate()
                .map(|(i, &c)| Task {
                    name: format!("t{i}"),
                    cost: c,
                    pref: None,
                    stmts: vec![i],
                })
                .collect(),
            edges: vec![
                TaskEdge {
                    from: 0,
                    to: 1,
                    volume: 1,
                },
                TaskEdge {
                    from: 0,
                    to: 2,
                    volume: 1,
                },
                TaskEdge {
                    from: 1,
                    to: 3,
                    volume: 1,
                },
                TaskEdge {
                    from: 2,
                    to: 3,
                    volume: 1,
                },
            ],
        }
    }

    #[test]
    fn diamond_parallelises_on_two_pes() {
        let g = diamond([10, 100, 100, 10]);
        let arch = ArchModel::homogeneous(2);
        let m = list_schedule(&g, &arch).unwrap();
        // Serial: 220. Parallel with comm 10: ~140.
        assert!(m.makespan < 180, "makespan {}", m.makespan);
        // The two middle tasks must sit on different PEs.
        assert_ne!(m.assignment[1], m.assignment[2]);
    }

    #[test]
    fn single_pe_serialises() {
        let g = diamond([10, 100, 100, 10]);
        let arch = ArchModel::homogeneous(1);
        let m = list_schedule(&g, &arch).unwrap();
        assert!(m.makespan >= 220);
    }

    #[test]
    fn schedule_respects_dependences() {
        let g = diamond([10, 100, 50, 10]);
        let arch = ArchModel::homogeneous(3);
        let m = list_schedule(&g, &arch).unwrap();
        let slot = |t: usize| m.schedule.iter().find(|s| s.task == t).copied().unwrap();
        assert!(slot(1).start >= slot(0).end);
        assert!(slot(3).start >= slot(1).end.max(slot(2).end));
    }

    #[test]
    fn pe_preferences_steer_assignment() {
        let mut g = diamond([10, 100, 100, 10]);
        g.tasks[1].pref = Some(PeClass::Dsp);
        let arch = ArchModel::wireless_terminal(1, 1);
        let m = list_schedule(&g, &arch).unwrap();
        let dsp = arch.pe_by_name("dsp0").unwrap();
        assert_eq!(m.assignment[1], dsp);
    }

    #[test]
    fn anneal_never_worse_than_list() {
        let g = diamond([37, 91, 64, 22]);
        let arch = ArchModel::homogeneous(3);
        let ls = list_schedule(&g, &arch).unwrap();
        let sa = anneal(&g, &arch, 42, 500).unwrap();
        assert!(sa.makespan <= ls.makespan);
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let g = diamond([37, 91, 64, 22]);
        let arch = ArchModel::homogeneous(3);
        let a = anneal(&g, &arch, 7, 300).unwrap();
        let b = anneal(&g, &arch, 7, 300).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn anneal_multi_is_thread_count_invariant() {
        let g = diamond([37, 91, 64, 22]);
        let arch = ArchModel::homogeneous(3);
        let serial = anneal_multi(&g, &arch, 7, 200, 6, 1).unwrap();
        for threads in [2, 3, 4, 8] {
            let parallel = anneal_multi(&g, &arch, 7, 200, 6, threads).unwrap();
            assert_eq!(
                serial, parallel,
                "threads={threads} must not change the result"
            );
        }
    }

    #[test]
    fn anneal_multi_never_worse_than_single_start() {
        let g = diamond([37, 91, 64, 22]);
        let arch = ArchModel::homogeneous(3);
        // The multi-start best is the min over restarts, one of which is
        // exactly the single-start run with the same first split seed.
        let multi = anneal_multi(&g, &arch, 11, 200, 4, 2).unwrap();
        let single = anneal_multi(&g, &arch, 11, 200, 1, 1).unwrap();
        assert!(multi.makespan <= single.makespan);
    }

    #[test]
    fn profiled_anneal_warm_start_matches_cold() {
        use mpsoc_platform::isa::assemble;
        use mpsoc_platform::platform::PlatformBuilder;
        use mpsoc_platform::{Frequency, PrefixSource};

        // A measurement run that deposits per-task cycle counts at 0x100.
        let build = || -> mpsoc_platform::Result<mpsoc_platform::Platform> {
            let mut p = PlatformBuilder::new()
                .cores(1, Frequency::mhz(100))
                .shared_words(512)
                .cache(None)
                .build()?;
            let prog = assemble(
                "movi r1, 0x100\nmovi r2, 55\nst r2, r1, 0\nmovi r2, 40\nst r2, r1, 1\n\
                 movi r2, 90\nst r2, r1, 2\nmovi r2, 15\nst r2, r1, 3\nhalt",
            )
            .unwrap();
            p.load_program(0, prog, 0)?;
            Ok(p)
        };
        let steps = 12;
        let cold = PrefixSource::Cold {
            build: &build,
            steps,
        };
        // The warm start: capture once at the region of interest.
        let mut p = build().unwrap();
        for _ in 0..steps {
            p.step().unwrap();
        }
        let image = p.capture().unwrap();
        let warm = PrefixSource::Warm { image: &image };

        let g = diamond([37, 91, 64, 22]);
        let arch = ArchModel::homogeneous(3);
        // The profile really re-costs the graph...
        let profiled = profile_task_costs(&g, &warm, 0x100).unwrap();
        assert_eq!(
            profiled.tasks.iter().map(|t| t.cost).collect::<Vec<_>>(),
            vec![55, 40, 90, 15]
        );
        // ...and warm equals cold, bit for bit, at every thread count.
        let reference = anneal_multi_profiled(&g, &arch, 7, 200, 6, 1, &cold, 0x100).unwrap();
        for threads in [1, 2, 4, 8] {
            let warm_m =
                anneal_multi_profiled(&g, &arch, 7, 200, 6, threads, &warm, 0x100).unwrap();
            assert_eq!(
                reference, warm_m,
                "warm start at {threads} threads must match the cold reference"
            );
        }
    }

    #[test]
    fn anneal_multi_validates_starts() {
        let g = diamond([1, 1, 1, 1]);
        let arch = ArchModel::homogeneous(2);
        assert!(anneal_multi(&g, &arch, 1, 10, 0, 2).is_err());
    }

    #[test]
    fn evaluate_validates() {
        let g = diamond([1, 1, 1, 1]);
        let arch = ArchModel::homogeneous(2);
        assert!(evaluate(&g, &arch, &[0, 1]).is_err());
        assert!(evaluate(&g, &arch, &[0, 1, 2, 0]).is_err());
    }

    #[test]
    fn empty_graph_maps_trivially() {
        let g = TaskGraph::default();
        let arch = ArchModel::homogeneous(2);
        let m = list_schedule(&g, &arch).unwrap();
        assert_eq!(m.makespan, 0);
    }
}

/// Checks a mapping against an application's real-time [`Annotations`]:
/// the static schedule's makespan must fit the latency bound, and must
/// also fit the period (otherwise jobs pile up).
///
/// This is the admission step of the paper's flow — *"taking into account
/// real-time requirements"* — executed after mapping rather than during
/// it, so the caller can fall back to a bigger platform or a different
/// optimizer on failure.
///
/// # Errors
///
/// [`Error::Infeasible`] naming the violated bound.
///
/// [`Annotations`]: crate::anno::Annotations
pub fn verify_realtime(
    app: &str,
    mapping: &Mapping,
    anno: &crate::anno::Annotations,
) -> Result<()> {
    if let Some(latency) = anno.latency {
        if mapping.makespan > latency {
            return Err(Error::Infeasible {
                app: app.to_string(),
                achieved: mapping.makespan,
                required: latency,
            });
        }
    }
    if let Some(period) = anno.period {
        if mapping.makespan > period {
            return Err(Error::Infeasible {
                app: app.to_string(),
                achieved: mapping.makespan,
                required: period,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod rt_tests {
    use super::*;
    use crate::anno::{take_annotations, Annotations};
    use crate::arch::ArchModel;
    use crate::taskgraph::extract_task_graph;
    use mpsoc_minic::cost::CostModel;

    #[test]
    fn annotated_app_verifies_end_to_end() {
        let mut unit = mpsoc_minic::parse(
            "void app(int n, int out[]) {\n\
             maps_period(100000);\n\
             maps_latency(60000);\n\
             for (i = 0; i < 64; i = i + 1) { out[i] = i * 2; }\n\
             for (j = 0; j < 64; j = j + 1) { out[j] = out[j] + 1; }\n\
             }",
        )
        .unwrap();
        let anno = take_annotations(&mut unit, "app").unwrap();
        let graph = extract_task_graph(&unit, "app", &CostModel::default()).unwrap();
        let arch = ArchModel::homogeneous(2);
        let m = list_schedule(&graph, &arch).unwrap();
        verify_realtime("app", &m, &anno).unwrap();
        // A latency bound below the makespan is reported infeasible.
        let tight = Annotations {
            latency: Some(m.makespan - 1),
            ..anno
        };
        let e = verify_realtime("app", &m, &tight).unwrap_err();
        assert!(matches!(e, Error::Infeasible { .. }));
    }

    #[test]
    fn period_bound_checked_too() {
        let m = Mapping {
            assignment: vec![],
            schedule: vec![],
            makespan: 500,
        };
        let anno = Annotations {
            period: Some(400),
            latency: None,
            pref: None,
        };
        assert!(verify_realtime("x", &m, &anno).is_err());
        let loose = Annotations {
            period: Some(600),
            latency: None,
            pref: None,
        };
        assert!(verify_realtime("x", &m, &loose).is_ok());
    }
}
