//! Task graphs and their extraction from sequential mini-C.
//!
//! This is the front half of Figure 1 of the paper: *"MAPS uses advanced
//! dataflow analysis to extract the available parallelism from the
//! sequential codes … and to form a set of fine-grained task graphs based on
//! a coarse model of the target architecture."*
//!
//! [`extract_task_graph`] turns each top-level statement of a function into
//! a unit task, computes flow dependences between units (the communication
//! edges, weighted by the number of conferring memory locations), and
//! [`coarsen`] clusters units into the requested number of coarse tasks
//! while respecting dependences — the semi-automatic granularity knob a
//! MAPS user turns.

use std::collections::BTreeMap;

use mpsoc_minic::analysis::accesses;
use mpsoc_minic::cost::{stmt_cost, CostModel};
use mpsoc_minic::{Function, Unit};

use crate::arch::PeClass;
use crate::error::{Error, Result};

/// A node in a task graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Task {
    /// Task name (derived from the function and statement range).
    pub name: String,
    /// Estimated cost in reference cycles.
    pub cost: u64,
    /// Preferred PE class from annotations (None = neutral).
    pub pref: Option<PeClass>,
    /// Indices of the source statements folded into this task.
    pub stmts: Vec<usize>,
}

/// A dependence edge `from -> to` carrying `volume` data units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskEdge {
    /// Producing task index.
    pub from: usize,
    /// Consuming task index.
    pub to: usize,
    /// Communication volume (data units).
    pub volume: u64,
}

/// A weighted DAG of tasks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskGraph {
    /// The tasks, in topological (source) order.
    pub tasks: Vec<Task>,
    /// The edges.
    pub edges: Vec<TaskEdge>,
}

impl TaskGraph {
    /// Total computational work.
    pub fn total_cost(&self) -> u64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// Length of the critical (most expensive) dependence path, computation
    /// only — the bound on achievable parallel latency.
    pub fn critical_path(&self) -> u64 {
        let n = self.tasks.len();
        let mut dist = vec![0u64; n];
        // Tasks are in topological order by construction.
        for i in 0..n {
            dist[i] = dist[i].max(self.tasks[i].cost);
            for e in self.edges.iter().filter(|e| e.from == i) {
                dist[e.to] = dist[e.to].max(dist[i] + self.tasks[e.to].cost);
            }
        }
        dist.into_iter().max().unwrap_or(0)
    }

    /// Upper bound on speedup from this granularity: total work over
    /// critical path.
    pub fn parallelism(&self) -> f64 {
        let cp = self.critical_path();
        if cp == 0 {
            1.0
        } else {
            self.total_cost() as f64 / cp as f64
        }
    }

    /// Predecessors of task `i`.
    pub fn preds(&self, i: usize) -> impl Iterator<Item = &TaskEdge> {
        self.edges.iter().filter(move |e| e.to == i)
    }

    /// Successors of task `i`.
    pub fn succs(&self, i: usize) -> impl Iterator<Item = &TaskEdge> {
        self.edges.iter().filter(move |e| e.from == i)
    }
}

/// Extracts a fine-grained task graph from function `func` of `unit`: one
/// task per top-level statement, edges from flow dependences, volumes from
/// the number of conflicting memory references.
///
/// # Errors
///
/// [`Error::NotFound`] if the function does not exist.
pub fn extract_task_graph(unit: &Unit, func: &str, model: &CostModel) -> Result<TaskGraph> {
    let f: &Function = unit
        .function(func)
        .ok_or_else(|| Error::NotFound(func.to_string()))?;
    let sets: Vec<_> = f.body.iter().map(accesses).collect();
    let mut tasks = Vec::new();
    for (i, s) in f.body.iter().enumerate() {
        let mut stack = Vec::new();
        tasks.push(Task {
            name: format!("{func}_s{i}"),
            cost: stmt_cost(unit, s, model, &mut stack).max(1),
            pref: None,
            stmts: vec![i],
        });
    }
    let mut edges = Vec::new();
    for j in 1..f.body.len() {
        for i in 0..j {
            // Flow dependence: i writes something j reads.
            let volume = sets[i]
                .writes
                .iter()
                .filter(|w| sets[j].reads.iter().any(|r| w.conflicts(r)))
                .count() as u64;
            // Anti/output dependences also order tasks (volume-free).
            let ordered = volume > 0
                || sets[i]
                    .reads
                    .iter()
                    .any(|r| sets[j].writes.iter().any(|w| r.conflicts(w)))
                || sets[i]
                    .writes
                    .iter()
                    .any(|w| sets[j].writes.iter().any(|x| w.conflicts(x)));
            if ordered {
                edges.push(TaskEdge {
                    from: i,
                    to: j,
                    volume: volume.max(1),
                });
            }
        }
    }
    Ok(TaskGraph { tasks, edges })
}

/// Assigns a preferred PE class to tasks whose name matches one of the
/// `hints` — the paper's *"lightweight C extensions"* by which *"preferred
/// PE types can be optionally annotated"*. A hint `("dct", PeClass::Dsp)`
/// marks every task whose source statements call a function whose name
/// contains `"dct"`.
pub fn annotate_pe_hints(
    graph: &mut TaskGraph,
    unit: &Unit,
    func: &str,
    hints: &[(&str, PeClass)],
) {
    let Some(f) = unit.function(func) else { return };
    for task in &mut graph.tasks {
        for &si in &task.stmts {
            let mut called = Vec::new();
            if let Some(s) = f.body.get(si) {
                mpsoc_minic::ast::visit_exprs(s, &mut |e| {
                    if let mpsoc_minic::Expr::Call(name, _) = e {
                        called.push(name.clone());
                    }
                });
            }
            for (pat, class) in hints {
                if called.iter().any(|c| c.contains(pat)) {
                    task.pref = Some(*class);
                }
            }
        }
    }
}

/// Clusters a fine-grained graph into at most `k` coarse tasks.
///
/// Greedy topological clustering: walk tasks in order, open a new cluster
/// whenever the current one reaches the balanced-size target
/// (`total/k`). Dependences between clusters are the union of member
/// dependences (volumes summed); intra-cluster communication disappears —
/// which is exactly why coarsening trades parallelism for lower
/// communication overhead.
///
/// # Errors
///
/// [`Error::Config`] if `k == 0`.
pub fn coarsen(graph: &TaskGraph, k: usize) -> Result<TaskGraph> {
    if k == 0 {
        return Err(Error::Config("cannot coarsen to zero tasks".into()));
    }
    if graph.tasks.is_empty() || k >= graph.tasks.len() {
        return Ok(graph.clone());
    }
    let target = graph.total_cost().div_ceil(k as u64).max(1);
    let mut cluster_of = vec![0usize; graph.tasks.len()];
    let mut clusters: Vec<Task> = Vec::new();
    let mut acc = 0u64;
    for (i, t) in graph.tasks.iter().enumerate() {
        let need_new = clusters.is_empty() || (acc >= target && clusters.len() < k);
        if need_new {
            clusters.push(Task {
                name: format!("cluster{}", clusters.len()),
                cost: 0,
                pref: None,
                stmts: Vec::new(),
            });
            acc = 0;
        }
        let c = clusters.len() - 1;
        cluster_of[i] = c;
        let cl = &mut clusters[c];
        cl.cost += t.cost;
        cl.stmts.extend(t.stmts.iter().copied());
        if cl.pref.is_none() {
            cl.pref = t.pref;
        }
        acc += t.cost;
    }
    // Union the edges.
    let mut vol: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for e in &graph.edges {
        let (cf, ct) = (cluster_of[e.from], cluster_of[e.to]);
        if cf != ct {
            *vol.entry((cf, ct)).or_insert(0) += e.volume;
        }
    }
    Ok(TaskGraph {
        tasks: clusters,
        edges: vol
            .into_iter()
            .map(|((from, to), volume)| TaskEdge { from, to, volume })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_minic::parse;

    const INDEP: &str = "void f(int a[], int b[]) {\n\
         a[0] = 1;\n\
         b[0] = 2;\n\
         a[1] = 3;\n\
         b[1] = 4;\n\
         }";

    #[test]
    fn independent_statements_have_no_edges() {
        let u = parse(INDEP).unwrap();
        let g = extract_task_graph(&u, "f", &CostModel::default()).unwrap();
        assert_eq!(g.tasks.len(), 4);
        assert!(g.edges.is_empty());
        assert!(g.parallelism() > 3.9);
    }

    #[test]
    fn flow_chain_is_sequential() {
        let u = parse("void f(void) { int x = 1; int y = x + 1; int z = y + 1; }").unwrap();
        let g = extract_task_graph(&u, "f", &CostModel::default()).unwrap();
        assert!(g.edges.iter().any(|e| e.from == 0 && e.to == 1));
        assert!(g.edges.iter().any(|e| e.from == 1 && e.to == 2));
        assert!((g.parallelism() - 1.0).abs() < 0.3);
    }

    #[test]
    fn loop_costs_dominate() {
        let u = parse(
            "void f(int a[], int b[]) {\n\
             int t = 1;\n\
             for (i = 0; i < 100; i = i + 1) { a[i] = i * i; }\n\
             b[0] = t;\n\
             }",
        )
        .unwrap();
        let g = extract_task_graph(&u, "f", &CostModel::default()).unwrap();
        assert!(g.tasks[1].cost > 50 * g.tasks[0].cost);
    }

    #[test]
    fn coarsen_reduces_tasks_and_keeps_cost() {
        let u = parse(INDEP).unwrap();
        let g = extract_task_graph(&u, "f", &CostModel::default()).unwrap();
        let c = coarsen(&g, 2).unwrap();
        assert_eq!(c.tasks.len(), 2);
        assert_eq!(c.total_cost(), g.total_cost());
    }

    #[test]
    fn coarsen_merges_edges() {
        let u = parse("void f(void) { int x = 1; int y = x + 1; int z = y + 1; int w = z + 1; }")
            .unwrap();
        let g = extract_task_graph(&u, "f", &CostModel::default()).unwrap();
        let c = coarsen(&g, 2).unwrap();
        assert_eq!(c.tasks.len(), 2);
        // One cross-cluster dependence chain remains.
        assert_eq!(c.edges.len(), 1);
        assert!(c.edges[0].volume >= 1);
    }

    #[test]
    fn coarsen_identity_when_k_large() {
        let u = parse(INDEP).unwrap();
        let g = extract_task_graph(&u, "f", &CostModel::default()).unwrap();
        assert_eq!(coarsen(&g, 10).unwrap(), g);
        assert!(coarsen(&g, 0).is_err());
    }

    #[test]
    fn pe_hints_annotate_matching_tasks() {
        let u = parse("void f(int a[]) { a[0] = dct_8x8(a); a[1] = control(a); }").unwrap();
        let mut g = extract_task_graph(&u, "f", &CostModel::default()).unwrap();
        annotate_pe_hints(&mut g, &u, "f", &[("dct", PeClass::Dsp)]);
        assert_eq!(g.tasks[0].pref, Some(PeClass::Dsp));
        assert_eq!(g.tasks[1].pref, None);
    }

    #[test]
    fn missing_function_reported() {
        let u = parse("void f(void) { return; }").unwrap();
        assert!(extract_task_graph(&u, "nope", &CostModel::default()).is_err());
    }
}
