//! Front-end error type.

use std::fmt;

/// A lexing, parsing, or semantic error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// 1-based line of the offending construct.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl Error {
    /// Creates an error at a position.
    pub fn new(line: usize, col: usize, msg: impl Into<String>) -> Self {
        Error {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias for the mini-C front end.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_position() {
        let e = Error::new(3, 14, "unexpected token `)`");
        assert_eq!(e.to_string(), "3:14: unexpected token `)`");
    }
}
