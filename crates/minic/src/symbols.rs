//! Scoped symbol tables and semantic checking.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::{Error, Result};

/// What kind of thing a name denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymbolKind {
    /// A scalar `int`.
    Scalar,
    /// An `int` array (with size if known).
    Array(Option<usize>),
    /// An `int*`.
    Pointer,
    /// A function.
    Function,
}

/// One declared symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// The name.
    pub name: String,
    /// What it denotes.
    pub kind: SymbolKind,
    /// Whether it was declared at file scope.
    pub global: bool,
}

/// The flat result of symbol resolution for one function: every name visible
/// in the body, innermost declaration winning.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    symbols: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Looks up a name.
    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.symbols.get(name)
    }

    /// Whether `name` denotes an array.
    pub fn is_array(&self, name: &str) -> bool {
        matches!(self.get(name).map(|s| s.kind), Some(SymbolKind::Array(_)))
    }

    /// Whether `name` denotes a pointer.
    pub fn is_pointer(&self, name: &str) -> bool {
        matches!(self.get(name).map(|s| s.kind), Some(SymbolKind::Pointer))
    }

    /// Iterates all visible symbols (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.values()
    }
}

/// Builds the symbol table for `func` within `unit` and checks that every
/// referenced name is declared.
///
/// mini-C scoping is simplified: all declarations inside a function share
/// one namespace (shadowing across nested blocks is rejected as
/// redeclaration), which matches the restricted "analyzable model" style the
/// Source Recoder aims for.
///
/// # Errors
///
/// Returns an [`Error`] naming the first undeclared or redeclared symbol.
pub fn resolve(unit: &Unit, func: &Function) -> Result<SymbolTable> {
    let mut table = SymbolTable::default();
    // Globals and functions first.
    for f in &unit.functions {
        table.symbols.insert(
            f.name.clone(),
            Symbol {
                name: f.name.clone(),
                kind: SymbolKind::Function,
                global: true,
            },
        );
    }
    for g in &unit.globals {
        if let StmtKind::Decl { name, ty, .. } = &g.kind {
            table.symbols.insert(
                name.clone(),
                Symbol {
                    name: name.clone(),
                    kind: kind_of(*ty),
                    global: true,
                },
            );
        }
    }
    // Parameters.
    for p in &func.params {
        insert_local(&mut table, &p.name, kind_of(p.ty))?;
    }
    // Local declarations, then reference check.
    collect_decls(&mut table, &func.body)?;
    check_refs(&table, &func.body)?;
    Ok(table)
}

fn kind_of(ty: Type) -> SymbolKind {
    match ty {
        Type::Int | Type::Void => SymbolKind::Scalar,
        Type::Array(n) => SymbolKind::Array(n),
        Type::Ptr => SymbolKind::Pointer,
    }
}

fn insert_local(table: &mut SymbolTable, name: &str, kind: SymbolKind) -> Result<()> {
    let prev = table.symbols.insert(
        name.to_string(),
        Symbol {
            name: name.to_string(),
            kind,
            global: false,
        },
    );
    match prev {
        Some(p) if !p.global => Err(Error::new(0, 0, format!("redeclaration of `{name}`"))),
        _ => Ok(()),
    }
}

fn collect_decls(table: &mut SymbolTable, stmts: &[Stmt]) -> Result<()> {
    for s in stmts {
        match &s.kind {
            StmtKind::Decl { name, ty, .. } => insert_local(table, name, kind_of(*ty))?,
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_decls(table, then_branch)?;
                collect_decls(table, else_branch)?;
            }
            StmtKind::While { body, .. } | StmtKind::Block(body) => collect_decls(table, body)?,
            StmtKind::For { var, body, .. } => {
                // The induction variable is implicitly declared by the loop
                // if not already visible.
                if table.get(var).is_none() {
                    insert_local(table, var, SymbolKind::Scalar)?;
                }
                collect_decls(table, body)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_refs(table: &SymbolTable, stmts: &[Stmt]) -> Result<()> {
    let mut err: Option<String> = None;
    for s in stmts {
        visit_exprs(s, &mut |e| {
            let name = match e {
                Expr::Var(n) | Expr::Index(n, _) => Some(n),
                Expr::Call(n, _) => Some(n),
                _ => None,
            };
            if let Some(n) = name {
                if table.get(n).is_none() && err.is_none() {
                    err = Some(n.clone());
                }
            }
        });
        // lvalues aren't visited by visit_exprs' expression walk.
        if let StmtKind::Assign { lhs, .. } = &s.kind {
            if table.get(lhs.base()).is_none() && err.is_none() {
                err = Some(lhs.base().to_string());
            }
        }
    }
    match err {
        Some(n) => Err(Error::new(0, 0, format!("use of undeclared `{n}`"))),
        None => {
            // Recurse into nested statement lists for lvalue checks.
            for s in stmts {
                match &s.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        check_refs(table, then_branch)?;
                        check_refs(table, else_branch)?;
                    }
                    StmtKind::While { body, .. }
                    | StmtKind::For { body, .. }
                    | StmtKind::Block(body) => check_refs(table, body)?,
                    _ => {}
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn resolves_params_globals_and_locals() {
        let u = parse("int g;\nint f(int x, int a[]) { int y = x; return y + g + a[0]; }").unwrap();
        let t = resolve(&u, &u.functions[0]).unwrap();
        assert_eq!(t.get("x").unwrap().kind, SymbolKind::Scalar);
        assert!(t.is_array("a"));
        assert!(t.get("g").unwrap().global);
        assert_eq!(t.get("f").unwrap().kind, SymbolKind::Function);
    }

    #[test]
    fn detects_undeclared_use() {
        let u = parse("int f(void) { return zz; }").unwrap();
        let e = resolve(&u, &u.functions[0]).unwrap_err();
        assert!(e.msg.contains("zz"));
    }

    #[test]
    fn detects_undeclared_assignment_target() {
        let u = parse("void f(void) { q = 1; }").unwrap();
        assert!(resolve(&u, &u.functions[0]).is_err());
    }

    #[test]
    fn detects_redeclaration() {
        let u = parse("void f(void) { int x; int x; }").unwrap();
        assert!(resolve(&u, &u.functions[0]).is_err());
    }

    #[test]
    fn for_loop_implicitly_declares_induction_var() {
        let u = parse("void f(int a[]) { for (i = 0; i < 4; i = i + 1) { a[i] = i; } }").unwrap();
        let t = resolve(&u, &u.functions[0]).unwrap();
        assert_eq!(t.get("i").unwrap().kind, SymbolKind::Scalar);
    }

    #[test]
    fn locals_may_shadow_globals() {
        let u = parse("int x;\nvoid f(void) { int x; x = 1; }").unwrap();
        let t = resolve(&u, &u.functions[0]).unwrap();
        assert!(!t.get("x").unwrap().global);
    }
}
