//! Lexical tokens of mini-C.

use std::fmt;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// The kinds of mini-C tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// An identifier or keyword candidate.
    Ident(String),
    /// `int`
    KwInt,
    /// `void`
    KwVoid,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::KwInt => write!(f, "int"),
            TokenKind::KwVoid => write!(f, "void"),
            TokenKind::KwIf => write!(f, "if"),
            TokenKind::KwElse => write!(f, "else"),
            TokenKind::KwWhile => write!(f, "while"),
            TokenKind::KwFor => write!(f, "for"),
            TokenKind::KwReturn => write!(f, "return"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Amp => write!(f, "&"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Caret => write!(f, "^"),
            TokenKind::Shl => write!(f, "<<"),
            TokenKind::Shr => write!(f, ">>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Not => write!(f, "!"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}
