//! # mpsoc-minic — a mini-C front end for MPSoC programming tools
//!
//! Three of the systems described in *"Programming MPSoC Platforms: Road
//! Works Ahead!"* (DATE 2009) operate on C source code: the MAPS
//! parallelization flow (Section IV) consumes *"sequential C code"*, the
//! HOPES CIC tasks (Section V) carry C bodies, and the Source Recoder
//! (Section VI) interactively transforms *"applications written in a C-based
//! SLDL"*. This crate is the shared front end they all build on:
//!
//! * [`lexer`] / [`parser`] — a restricted but genuine C subset: `int`
//!   scalars, arrays, pointers, functions, `if`/`while`/canonical `for`.
//! * [`ast`] — statements carry stable [`ast::NodeId`]s so interactive
//!   transformations can track identity across edits.
//! * [`printer`] — AST back to source (the recoder's code generator).
//! * [`symbols`] — scope resolution and semantic checks.
//! * [`analysis`] — def/use footprints, dependence graphs, and the
//!   analyzability score that pointer recoding improves.
//! * [`cost`] — the coarse static cost model MAPS partitions with.
//! * [`interp`] — a reference interpreter used as the semantic oracle in
//!   transformation and retargeting tests.
//!
//! ## Quickstart
//!
//! ```
//! use mpsoc_minic::{parser::parse, analysis, interp::Interp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = parse("int dot(int n, int a[], int b[]) {\n\
//!                   int s = 0;\n\
//!                   for (i = 0; i < n; i = i + 1) { s = s + a[i] * b[i]; }\n\
//!                   return s; }")?;
//! // Dependence analysis sees the loop-carried reduction on `s`.
//! let deps = analysis::dependences(&unit.functions[0].body);
//! assert!(!deps.is_empty());
//! // And the interpreter can execute it.
//! let mut it = Interp::new(&unit);
//! let a = it.alloc_array(&[1, 2, 3]);
//! let b = it.alloc_array(&[4, 5, 6]);
//! assert_eq!(it.run("dot", &[3, a, b])?, Some(32));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod cost;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod symbols;
pub mod token;

pub use crate::ast::{Expr, Function, LValue, NodeId, Param, Stmt, StmtKind, Type, Unit};
pub use crate::error::{Error, Result};
pub use crate::parser::parse;
pub use crate::printer::print_unit;
