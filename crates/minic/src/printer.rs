//! Pretty-printer: AST back to mini-C source.
//!
//! The Source Recoder (Section VI) keeps a *document object* in sync with
//! the AST; this printer is the code-generator half of that loop. Printing
//! then re-parsing a unit yields a structurally identical AST (node ids are
//! re-assigned), a property the test-suite checks.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole translation unit as mini-C source.
pub fn print_unit(unit: &Unit) -> String {
    let mut out = String::new();
    for g in &unit.globals {
        print_stmt(&mut out, g, 0);
    }
    if !unit.globals.is_empty() {
        out.push('\n');
    }
    for (i, f) in unit.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, f);
    }
    out
}

/// Renders one function definition.
pub fn print_function(out: &mut String, f: &Function) {
    let ret = match f.ret {
        Type::Void => "void",
        _ => "int",
    };
    let params = if f.params.is_empty() {
        "void".to_string()
    } else {
        f.params
            .iter()
            .map(|p| match p.ty {
                Type::Int => format!("int {}", p.name),
                Type::Ptr => format!("int *{}", p.name),
                Type::Array(Some(n)) => format!("int {}[{n}]", p.name),
                Type::Array(None) => format!("int {}[]", p.name),
                Type::Void => format!("void {}", p.name),
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "{ret} {}({params}) {{", f.name);
    for s in &f.body {
        print_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

/// Renders one statement at the given indent level.
pub fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match &s.kind {
        StmtKind::Decl { name, ty, init } => match ty {
            Type::Array(Some(n)) => {
                let _ = writeln!(out, "int {name}[{n}];");
            }
            Type::Array(None) => {
                let _ = writeln!(out, "int {name}[];");
            }
            Type::Ptr => match init {
                Some(e) => {
                    let _ = writeln!(out, "int *{name} = {};", print_expr(e));
                }
                None => {
                    let _ = writeln!(out, "int *{name};");
                }
            },
            _ => match init {
                Some(e) => {
                    let _ = writeln!(out, "int {name} = {};", print_expr(e));
                }
                None => {
                    let _ = writeln!(out, "int {name};");
                }
            },
        },
        StmtKind::Assign { lhs, rhs } => {
            let l = match lhs {
                LValue::Var(n) => n.clone(),
                LValue::Index(n, i) => format!("{n}[{}]", print_expr(i)),
                LValue::Deref(n) => format!("*{n}"),
            };
            let _ = writeln!(out, "{l} = {};", print_expr(rhs));
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            for t in then_branch {
                print_stmt(out, t, level + 1);
            }
            indent(out, level);
            if else_branch.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for e in else_branch {
                    print_stmt(out, e, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            for b in body {
                print_stmt(out, b, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::For {
            var,
            from,
            to,
            step,
            body,
        } => {
            let _ = writeln!(
                out,
                "for ({var} = {}; {var} < {}; {var} = {var} + {}) {{",
                print_expr(from),
                print_expr(to),
                print_expr(step)
            );
            for b in body {
                print_stmt(out, b, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", print_expr(e));
        }
        StmtKind::ExprStmt(e) => {
            let _ = writeln!(out, "{};", print_expr(e));
        }
        StmtKind::Block(body) => {
            out.push_str("{\n");
            for b in body {
                print_stmt(out, b, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

/// Renders an expression with minimal necessary parentheses (conservative:
/// every non-leaf binary operand is parenthesised, which is always correct).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Index(b, i) => format!("{b}[{}]", print_expr(i)),
        Expr::Un(op, x) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::Deref => "*",
                UnOp::Addr => "&",
            };
            match **x {
                Expr::Lit(_) | Expr::Var(_) | Expr::Index(..) | Expr::Call(..) => {
                    format!("{sym}{}", print_expr(x))
                }
                _ => format!("{sym}({})", print_expr(x)),
            }
        }
        Expr::Bin(op, l, r) => {
            let lp = match **l {
                Expr::Bin(..) => format!("({})", print_expr(l)),
                _ => print_expr(l),
            };
            let rp = match **r {
                Expr::Bin(..) | Expr::Un(..) => format!("({})", print_expr(r)),
                _ => print_expr(r),
            };
            format!("{lp} {} {rp}", op.symbol())
        }
        Expr::Call(f, args) => {
            let a = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("{f}({a})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips node ids by comparing printed forms.
    fn roundtrip(src: &str) -> (String, String) {
        let u1 = parse(src).unwrap();
        let p1 = print_unit(&u1);
        let u2 = parse(&p1).unwrap();
        let p2 = print_unit(&u2);
        (p1, p2)
    }

    #[test]
    fn print_parse_fixpoint() {
        let (p1, p2) = roundtrip(
            "int g = 1;\n\
             int sum(int n, int a[]) {\n\
               int s = 0;\n\
               for (i = 0; i < n; i = i + 1) { s = s + a[i]; }\n\
               if (s > 100) { s = 100; } else { s = s * 2; }\n\
               while (s % 2 == 0) { s = s / 2; }\n\
               return s;\n\
             }",
        );
        assert_eq!(p1, p2, "printer must be a fixpoint under reparsing");
    }

    #[test]
    fn expr_parens_preserve_meaning() {
        let u = parse("void f(void) { x = (1 + 2) * 3; y = 1 + 2 * 3; }").unwrap();
        let printed = print_unit(&u);
        let u2 = parse(&printed).unwrap();
        let get = |u: &crate::ast::Unit, i: usize| match &u.functions[0].body[i].kind {
            StmtKind::Assign { rhs, .. } => rhs.const_eval().unwrap(),
            _ => panic!(),
        };
        assert_eq!(get(&u2, 0), 9);
        assert_eq!(get(&u2, 1), 7);
    }

    #[test]
    fn prints_pointers_and_arrays() {
        let u = parse("void f(int *p, int a[4]) { *p = a[0]; int *q = &x; }").unwrap();
        let s = print_unit(&u);
        assert!(s.contains("int *p"));
        assert!(s.contains("int a[4]"));
        assert!(s.contains("*p = a[0];"));
        assert!(s.contains("int *q = &x;"));
    }

    #[test]
    fn prints_void_params() {
        let u = parse("void f(void) { return; }").unwrap();
        assert!(print_unit(&u).contains("void f(void)"));
    }
}
