//! A reference interpreter for mini-C.
//!
//! The interpreter defines the language's semantics and serves as the
//! *oracle* for the rest of the suite: the Source Recoder's transformations
//! (Section VI) are validated by checking that recoded programs compute the
//! same results, and the CIC translator (Section V) checks functional
//! equivalence of its per-target outputs the same way.
//!
//! The memory model is a single flat word array; arrays and scalars are
//! allocated cells, and pointers are plain addresses into it — close enough
//! to C to make pointer recoding meaningful.

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Reference to an unknown variable.
    Undefined(String),
    /// Call to an unknown function with no external handler.
    UnknownFunction(String),
    /// Memory access outside any allocation.
    OutOfBounds(i64),
    /// Division or remainder by zero.
    DivideByZero,
    /// The step budget was exhausted (likely an infinite loop).
    StepLimit,
    /// An address-of was applied to a non-addressable expression.
    NotAddressable,
    /// Wrong number of call arguments.
    Arity {
        /// Callee name.
        function: String,
        /// Expected parameter count.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Undefined(n) => write!(f, "undefined variable `{n}`"),
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            InterpError::OutOfBounds(a) => write!(f, "memory access out of bounds at {a}"),
            InterpError::DivideByZero => write!(f, "division by zero"),
            InterpError::StepLimit => write!(f, "step limit exceeded"),
            InterpError::NotAddressable => write!(f, "operand of `&` is not addressable"),
            InterpError::Arity {
                function,
                expected,
                got,
            } => write!(f, "`{function}` expects {expected} argument(s), got {got}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Result alias for interpretation.
pub type Result<T> = std::result::Result<T, InterpError>;

#[derive(Clone, Copy, Debug)]
enum Binding {
    /// A cell holding a scalar or pointer value.
    Cell(usize),
    /// An array allocation `[addr, addr+len)`.
    ArrayAlloc(usize),
}

enum Flow {
    Normal,
    Return(Option<i64>),
}

/// An external-function handler: `(name, args) -> Some(result)`.
pub type ExternFn<'a> = Box<dyn FnMut(&str, &[i64]) -> Option<i64> + 'a>;

/// The interpreter.
///
/// # Examples
///
/// ```
/// use mpsoc_minic::{parser::parse, interp::Interp};
/// let unit = parse("int sq(int x) { return x * x; }").unwrap();
/// let mut it = Interp::new(&unit);
/// assert_eq!(it.run("sq", &[9]).unwrap(), Some(81));
/// ```
pub struct Interp<'u> {
    unit: &'u Unit,
    mem: Vec<i64>,
    globals: HashMap<String, Binding>,
    externs: Option<ExternFn<'u>>,
    steps: u64,
    max_steps: u64,
}

impl fmt::Debug for Interp<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("mem_words", &self.mem.len())
            .field("steps", &self.steps)
            .finish()
    }
}

impl<'u> Interp<'u> {
    /// Creates an interpreter over `unit`, allocating and initialising its
    /// globals.
    pub fn new(unit: &'u Unit) -> Self {
        let mut it = Interp {
            unit,
            mem: Vec::new(),
            globals: HashMap::new(),
            externs: None,
            steps: 0,
            max_steps: 50_000_000,
        };
        // Allocate globals; initializers may only use constants.
        for g in &unit.globals {
            if let StmtKind::Decl { name, ty, init } = &g.kind {
                let b = match ty {
                    Type::Array(Some(n)) => it.alloc(*n),
                    _ => it.alloc(1),
                };
                if let (Binding::Cell(addr), Some(e)) = (b, init) {
                    it.mem[addr] = e.const_eval().unwrap_or(0);
                }
                it.globals.insert(name.clone(), b);
            }
        }
        it
    }

    /// Installs a handler for calls to functions not defined in the unit.
    pub fn set_externs(&mut self, f: ExternFn<'u>) {
        self.externs = Some(f);
    }

    /// Caps the number of executed statements/expressions.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps = max;
    }

    fn alloc(&mut self, len: usize) -> Binding {
        let addr = self.mem.len();
        self.mem.extend(std::iter::repeat_n(0, len.max(1)));
        if len == 1 {
            Binding::Cell(addr)
        } else {
            Binding::ArrayAlloc(addr)
        }
    }

    /// Allocates an array in interpreter memory and returns its address, for
    /// passing buffers to functions taking `int a[]`.
    pub fn alloc_array(&mut self, data: &[i64]) -> i64 {
        let addr = self.mem.len();
        self.mem.extend_from_slice(data);
        addr as i64
    }

    /// Reads `len` words starting at `addr` (e.g. an output buffer).
    ///
    /// # Errors
    ///
    /// [`InterpError::OutOfBounds`] if the range escapes memory.
    pub fn read_array(&self, addr: i64, len: usize) -> Result<Vec<i64>> {
        let start = usize::try_from(addr).map_err(|_| InterpError::OutOfBounds(addr))?;
        let end = start + len;
        if end > self.mem.len() {
            return Err(InterpError::OutOfBounds(end as i64));
        }
        Ok(self.mem[start..end].to_vec())
    }

    fn load(&self, addr: i64) -> Result<i64> {
        usize::try_from(addr)
            .ok()
            .and_then(|a| self.mem.get(a).copied())
            .ok_or(InterpError::OutOfBounds(addr))
    }

    fn store(&mut self, addr: i64, v: i64) -> Result<()> {
        let a = usize::try_from(addr).map_err(|_| InterpError::OutOfBounds(addr))?;
        match self.mem.get_mut(a) {
            Some(c) => {
                *c = v;
                Ok(())
            }
            None => Err(InterpError::OutOfBounds(addr)),
        }
    }

    fn tick(&mut self) -> Result<()> {
        self.steps += 1;
        if self.steps > self.max_steps {
            Err(InterpError::StepLimit)
        } else {
            Ok(())
        }
    }

    /// Calls function `name` with `args` (scalars, or addresses from
    /// [`alloc_array`](Interp::alloc_array) for array/pointer parameters).
    ///
    /// # Errors
    ///
    /// Any [`InterpError`] raised during evaluation.
    pub fn run(&mut self, name: &str, args: &[i64]) -> Result<Option<i64>> {
        let f = self
            .unit
            .function(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_string()))?;
        if f.params.len() != args.len() {
            return Err(InterpError::Arity {
                function: name.to_string(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        let mut frame: HashMap<String, Binding> = HashMap::new();
        for (p, &a) in f.params.iter().zip(args) {
            let b = self.alloc(1);
            if let Binding::Cell(addr) = b {
                self.mem[addr] = a;
            }
            frame.insert(p.name.clone(), b);
        }
        match self.exec_block(&f.body, &mut frame)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], frame: &mut HashMap<String, Binding>) -> Result<Flow> {
        for s in stmts {
            match self.exec_stmt(s, frame)? {
                Flow::Normal => {}
                r => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt, frame: &mut HashMap<String, Binding>) -> Result<Flow> {
        self.tick()?;
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let b = match ty {
                    Type::Array(Some(n)) => self.alloc(*n),
                    _ => self.alloc(1),
                };
                frame.insert(name.clone(), b);
                if let Some(e) = init {
                    let v = self.eval(e, frame)?;
                    if let Binding::Cell(addr) = b {
                        self.mem[addr] = v;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Assign { lhs, rhs } => {
                let v = self.eval(rhs, frame)?;
                let addr = self.lvalue_addr(lhs, frame)?;
                self.store(addr, v)?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond, frame)? != 0 {
                    self.exec_block(then_branch, frame)
                } else {
                    self.exec_block(else_branch, frame)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond, frame)? != 0 {
                    self.tick()?;
                    match self.exec_block(body, frame)? {
                        Flow::Normal => {}
                        r => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                var,
                from,
                to,
                step,
                body,
            } => {
                let init = self.eval(from, frame)?;
                if !frame.contains_key(var) && !self.globals.contains_key(var) {
                    let b = self.alloc(1);
                    frame.insert(var.clone(), b);
                }
                let vaddr = self.binding_addr(var, frame)?;
                self.store(vaddr, init)?;
                loop {
                    let cur = self.load(vaddr)?;
                    let bound = self.eval(to, frame)?;
                    if cur >= bound {
                        break;
                    }
                    self.tick()?;
                    match self.exec_block(body, frame)? {
                        Flow::Normal => {}
                        r => return Ok(r),
                    }
                    let stepv = self.eval(step, frame)?;
                    let cur = self.load(vaddr)?;
                    self.store(vaddr, cur.wrapping_add(stepv))?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(e, frame)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::ExprStmt(e) => {
                self.eval(e, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::Block(body) => self.exec_block(body, frame),
        }
    }

    fn binding_addr(&self, name: &str, frame: &HashMap<String, Binding>) -> Result<i64> {
        match frame.get(name).or_else(|| self.globals.get(name)) {
            Some(Binding::Cell(a)) => Ok(*a as i64),
            Some(Binding::ArrayAlloc(a)) => Ok(*a as i64),
            None => Err(InterpError::Undefined(name.to_string())),
        }
    }

    /// Base address for indexing `name`: arrays yield their allocation,
    /// scalars/pointers yield the *pointer value stored in* their cell.
    fn index_base(&self, name: &str, frame: &HashMap<String, Binding>) -> Result<i64> {
        match frame.get(name).or_else(|| self.globals.get(name)) {
            Some(Binding::ArrayAlloc(a)) => Ok(*a as i64),
            Some(Binding::Cell(a)) => self.load(*a as i64),
            None => Err(InterpError::Undefined(name.to_string())),
        }
    }

    fn lvalue_addr(&mut self, lv: &LValue, frame: &mut HashMap<String, Binding>) -> Result<i64> {
        match lv {
            LValue::Var(n) => self.binding_addr(n, frame),
            LValue::Index(a, i) => {
                let base = self.index_base(a, frame)?;
                let idx = self.eval(i, frame)?;
                Ok(base + idx)
            }
            LValue::Deref(p) => {
                let paddr = self.binding_addr(p, frame)?;
                self.load(paddr)
            }
        }
    }

    fn eval(&mut self, e: &Expr, frame: &mut HashMap<String, Binding>) -> Result<i64> {
        self.tick()?;
        match e {
            Expr::Lit(v) => Ok(*v),
            Expr::Var(n) => match frame.get(n).or_else(|| self.globals.get(n)) {
                Some(Binding::Cell(a)) => self.load(*a as i64),
                // An array used as a value decays to its address.
                Some(Binding::ArrayAlloc(a)) => Ok(*a as i64),
                None => Err(InterpError::Undefined(n.clone())),
            },
            Expr::Index(a, i) => {
                let base = self.index_base(a, frame)?;
                let idx = self.eval(i, frame)?;
                self.load(base + idx)
            }
            Expr::Un(op, x) => match op {
                UnOp::Neg => Ok(self.eval(x, frame)?.wrapping_neg()),
                UnOp::Not => Ok((self.eval(x, frame)? == 0) as i64),
                UnOp::Deref => {
                    let addr = self.eval(x, frame)?;
                    self.load(addr)
                }
                UnOp::Addr => match &**x {
                    Expr::Var(n) => self.binding_addr(n, frame),
                    Expr::Index(a, i) => {
                        let base = self.index_base(a, frame)?;
                        let idx = self.eval(i, frame)?;
                        Ok(base + idx)
                    }
                    _ => Err(InterpError::NotAddressable),
                },
            },
            Expr::Bin(op, l, r) => {
                let a = self.eval(l, frame)?;
                // Short-circuit logic.
                match op {
                    BinOp::LAnd if a == 0 => return Ok(0),
                    BinOp::LOr if a != 0 => return Ok(1),
                    _ => {}
                }
                let b = self.eval(r, frame)?;
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(InterpError::DivideByZero);
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(InterpError::DivideByZero);
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                    BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::LAnd => ((a != 0) && (b != 0)) as i64,
                    BinOp::LOr => ((a != 0) || (b != 0)) as i64,
                })
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                if self.unit.function(name).is_some() {
                    Ok(self.run(name, &vals)?.unwrap_or(0))
                } else if let Some(h) = self.externs.as_mut() {
                    h(name, &vals).ok_or_else(|| InterpError::UnknownFunction(name.clone()))
                } else {
                    Err(InterpError::UnknownFunction(name.clone()))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run1(src: &str, f: &str, args: &[i64]) -> Option<i64> {
        let unit = parse(src).unwrap();
        let result = Interp::new(&unit).run(f, args).unwrap();
        result
    }

    #[test]
    fn arithmetic_and_control() {
        assert_eq!(
            run1(
                "int fac(int n) { int r = 1; while (n > 1) { r = r * n; n = n - 1; } return r; }",
                "fac",
                &[5]
            ),
            Some(120)
        );
    }

    #[test]
    fn for_loop_and_arrays() {
        let src = "int sum(int n, int a[]) { int s = 0; for (i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }";
        let unit = parse(src).unwrap();
        let mut it = Interp::new(&unit);
        let buf = it.alloc_array(&[1, 2, 3, 4]);
        assert_eq!(it.run("sum", &[4, buf]).unwrap(), Some(10));
    }

    #[test]
    fn local_arrays_and_writeback() {
        let src = "void fill(int n, int out[]) { int tmp[8]; for (i = 0; i < n; i = i + 1) { tmp[i] = i * i; } for (i = 0; i < n; i = i + 1) { out[i] = tmp[i]; } }";
        let unit = parse(src).unwrap();
        let mut it = Interp::new(&unit);
        let out = it.alloc_array(&[0; 4]);
        it.run("fill", &[4, out]).unwrap();
        assert_eq!(it.read_array(out, 4).unwrap(), vec![0, 1, 4, 9]);
    }

    #[test]
    fn pointers_and_address_of() {
        let src = "int f(void) { int x = 3; int *p = &x; *p = *p + 4; return x; }";
        assert_eq!(run1(src, "f", &[]), Some(7));
    }

    #[test]
    fn pointer_into_array() {
        let src = "int f(int a[]) { int *p = &a[2]; *p = 99; return a[2]; }";
        let unit = parse(src).unwrap();
        let mut it = Interp::new(&unit);
        let a = it.alloc_array(&[0, 0, 0, 0]);
        assert_eq!(it.run("f", &[a]).unwrap(), Some(99));
        assert_eq!(it.read_array(a, 4).unwrap()[2], 99);
    }

    #[test]
    fn nested_calls_and_recursion() {
        let src = "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }";
        assert_eq!(run1(src, "fib", &[10]), Some(55));
    }

    #[test]
    fn globals_are_shared_across_calls() {
        let src = "int g = 0;\nvoid bump(void) { g = g + 1; }\nint get(void) { return g; }";
        let unit = parse(src).unwrap();
        let mut it = Interp::new(&unit);
        it.run("bump", &[]).unwrap();
        it.run("bump", &[]).unwrap();
        assert_eq!(it.run("get", &[]).unwrap(), Some(2));
    }

    #[test]
    fn short_circuit_evaluation() {
        // Division by zero on the RHS must not be reached.
        let src = "int f(int x) { if (x == 0 || 10 / x > 1) { return 1; } return 0; }";
        assert_eq!(run1(src, "f", &[0]), Some(1));
    }

    #[test]
    fn extern_handler_called() {
        let unit = parse("int f(int x) { return magic(x) + 1; }").unwrap();
        let mut it = Interp::new(&unit);
        it.set_externs(Box::new(|name, args| {
            (name == "magic").then(|| args[0] * 10)
        }));
        assert_eq!(it.run("f", &[4]).unwrap(), Some(41));
    }

    #[test]
    fn division_by_zero_reported() {
        let unit = parse("int f(int x) { return 1 / x; }").unwrap();
        assert_eq!(
            Interp::new(&unit).run("f", &[0]),
            Err(InterpError::DivideByZero)
        );
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let unit = parse("void f(void) { while (1) { } }").unwrap();
        let mut it = Interp::new(&unit);
        it.set_max_steps(10_000);
        assert_eq!(it.run("f", &[]), Err(InterpError::StepLimit));
    }

    #[test]
    fn arity_checked() {
        let unit = parse("int f(int x) { return x; }").unwrap();
        assert!(matches!(
            Interp::new(&unit).run("f", &[]),
            Err(InterpError::Arity { .. })
        ));
    }

    #[test]
    fn out_of_bounds_detected() {
        let unit = parse("int f(int a[]) { return a[1000000]; }").unwrap();
        let mut it = Interp::new(&unit);
        let a = it.alloc_array(&[1]);
        assert!(matches!(
            it.run("f", &[a]),
            Err(InterpError::OutOfBounds(_))
        ));
    }
}
