//! Static cost estimation.
//!
//! MAPS (Section IV) partitions *"based on a coarse model of the target
//! architecture"*: it needs per-statement work estimates to balance task
//! loads. This module assigns abstract cycle weights to expressions and
//! statements; constant-bound loops multiply their body cost by the trip
//! count, unknown bounds fall back to a configurable default.

use std::collections::HashMap;

use crate::ast::*;

/// Tunable weights of the abstract machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of +,-,logic ops.
    pub alu: u64,
    /// Cost of `*`.
    pub mul: u64,
    /// Cost of `/`, `%`.
    pub div: u64,
    /// Cost of an array or pointer memory access.
    pub mem: u64,
    /// Call overhead (besides the callee body).
    pub call: u64,
    /// Cost assumed for calls to functions outside the unit.
    pub external_call: u64,
    /// Trip count assumed for loops with non-constant bounds.
    pub default_trip: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 3,
            div: 10,
            mem: 4,
            call: 8,
            external_call: 20,
            default_trip: 16,
        }
    }
}

/// Computes the cost of every function in `unit` (callees folded into call
/// sites, recursion cut off at depth 8).
pub fn unit_costs(unit: &Unit, model: &CostModel) -> HashMap<String, u64> {
    let mut memo = HashMap::new();
    for f in &unit.functions {
        let c = function_cost(unit, f, model, &mut Vec::new());
        memo.insert(f.name.clone(), c);
    }
    memo
}

/// Cost of one function body.
pub fn function_cost(unit: &Unit, f: &Function, model: &CostModel, stack: &mut Vec<String>) -> u64 {
    if stack.iter().filter(|n| **n == f.name).count() >= 2 || stack.len() > 8 {
        return model.external_call; // recursion cutoff
    }
    stack.push(f.name.clone());
    let c = stmts_cost(unit, &f.body, model, stack);
    stack.pop();
    c
}

/// Cost of a statement sequence.
pub fn stmts_cost(unit: &Unit, stmts: &[Stmt], model: &CostModel, stack: &mut Vec<String>) -> u64 {
    stmts.iter().map(|s| stmt_cost(unit, s, model, stack)).sum()
}

/// Cost of one statement (loops folded by trip count).
pub fn stmt_cost(unit: &Unit, s: &Stmt, model: &CostModel, stack: &mut Vec<String>) -> u64 {
    match &s.kind {
        StmtKind::Decl { init, .. } => {
            init.as_ref()
                .map_or(0, |e| expr_cost(unit, e, model, stack))
                + model.alu
        }
        StmtKind::Assign { lhs, rhs } => {
            let lhs_cost = match lhs {
                LValue::Var(_) => model.alu,
                LValue::Index(_, i) => model.mem + expr_cost(unit, i, model, stack),
                LValue::Deref(_) => model.mem,
            };
            lhs_cost + expr_cost(unit, rhs, model, stack)
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            // Branches are averaged: a coarse model, per the paper.
            let t = stmts_cost(unit, then_branch, model, stack);
            let e = stmts_cost(unit, else_branch, model, stack);
            expr_cost(unit, cond, model, stack) + (t + e) / 2 + model.alu
        }
        StmtKind::While { cond, body } => {
            let per_iter =
                expr_cost(unit, cond, model, stack) + stmts_cost(unit, body, model, stack);
            per_iter * model.default_trip
        }
        StmtKind::For {
            from,
            to,
            step,
            body,
            ..
        } => {
            let trip = trip_count(from, to, step).unwrap_or(model.default_trip);
            let per_iter = 2 * model.alu + stmts_cost(unit, body, model, stack);
            per_iter * trip
        }
        StmtKind::Return(e) => e.as_ref().map_or(0, |e| expr_cost(unit, e, model, stack)),
        StmtKind::ExprStmt(e) => expr_cost(unit, e, model, stack),
        StmtKind::Block(body) => stmts_cost(unit, body, model, stack),
    }
}

/// The trip count of a canonical for-loop, when all bounds are constant.
pub fn trip_count(from: &Expr, to: &Expr, step: &Expr) -> Option<u64> {
    let (f, t, s) = (from.const_eval()?, to.const_eval()?, step.const_eval()?);
    if s <= 0 || t <= f {
        return Some(0);
    }
    Some(((t - f) as u64).div_ceil(s as u64))
}

fn expr_cost(unit: &Unit, e: &Expr, model: &CostModel, stack: &mut Vec<String>) -> u64 {
    match e {
        Expr::Lit(_) | Expr::Var(_) => 0,
        Expr::Index(_, i) => model.mem + expr_cost(unit, i, model, stack),
        Expr::Un(UnOp::Deref, x) => model.mem + expr_cost(unit, x, model, stack),
        Expr::Un(_, x) => model.alu + expr_cost(unit, x, model, stack),
        Expr::Bin(op, l, r) => {
            let opc = match op {
                BinOp::Mul => model.mul,
                BinOp::Div | BinOp::Rem => model.div,
                _ => model.alu,
            };
            opc + expr_cost(unit, l, model, stack) + expr_cost(unit, r, model, stack)
        }
        Expr::Call(name, args) => {
            let args_cost: u64 = args.iter().map(|a| expr_cost(unit, a, model, stack)).sum();
            let body = match unit.function(name) {
                Some(f) => function_cost(unit, f, model, stack),
                None => model.external_call,
            };
            model.call + args_cost + body
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn trip_count_constant_bounds() {
        assert_eq!(
            trip_count(&Expr::lit(0), &Expr::lit(10), &Expr::lit(1)),
            Some(10)
        );
        assert_eq!(
            trip_count(&Expr::lit(0), &Expr::lit(10), &Expr::lit(3)),
            Some(4)
        );
        assert_eq!(
            trip_count(&Expr::lit(5), &Expr::lit(5), &Expr::lit(1)),
            Some(0)
        );
        assert_eq!(
            trip_count(&Expr::var("n"), &Expr::lit(10), &Expr::lit(1)),
            None
        );
    }

    #[test]
    fn loop_cost_scales_with_trip_count() {
        let m = CostModel::default();
        let u10 =
            parse("void f(int a[]) { for (i = 0; i < 10; i = i + 1) { a[i] = i; } }").unwrap();
        let u100 =
            parse("void f(int a[]) { for (i = 0; i < 100; i = i + 1) { a[i] = i; } }").unwrap();
        let c10 = unit_costs(&u10, &m)["f"];
        let c100 = unit_costs(&u100, &m)["f"];
        assert_eq!(c100, c10 * 10);
    }

    #[test]
    fn div_costs_more_than_add() {
        let m = CostModel::default();
        let ua = parse("int f(int x) { return x + x; }").unwrap();
        let ud = parse("int f(int x) { return x / 3; }").unwrap();
        assert!(unit_costs(&ud, &m)["f"] > unit_costs(&ua, &m)["f"]);
    }

    #[test]
    fn call_includes_callee_body() {
        let m = CostModel::default();
        let u = parse(
            "int leaf(int x) { return x * x; }\n\
             int top(int x) { return leaf(x) + 1; }",
        )
        .unwrap();
        let costs = unit_costs(&u, &m);
        assert!(costs["top"] > costs["leaf"]);
    }

    #[test]
    fn recursion_terminates() {
        let m = CostModel::default();
        let u = parse("int f(int x) { return f(x - 1); }").unwrap();
        // Must not stack-overflow; exact value is irrelevant.
        let _ = unit_costs(&u, &m);
    }

    #[test]
    fn external_calls_use_default_weight() {
        let m = CostModel::default();
        let u = parse("int f(void) { return ext(); }").unwrap();
        assert_eq!(unit_costs(&u, &m)["f"], m.call + m.external_call);
    }
}
