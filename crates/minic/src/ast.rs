//! The mini-C abstract syntax tree.
//!
//! Every statement carries a stable [`NodeId`], allocated by the parser and
//! preserved by transformations where possible. The Source Recoder
//! (Section VI of the paper) keeps its document/AST synchronisation keyed on
//! these ids; the MAPS partitioner (Section IV) uses them to name the
//! statements it groups into tasks.

use std::fmt;

/// A stable identity for a statement node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Allocates fresh [`NodeId`]s.
#[derive(Clone, Debug, Default)]
pub struct NodeIdGen {
    next: u32,
}

impl NodeIdGen {
    /// Creates a generator starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a generator that continues after the largest id in use.
    pub fn starting_at(next: u32) -> Self {
        NodeIdGen { next }
    }

    /// Returns a fresh id.
    pub fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }
}

/// A mini-C type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// `int`
    Int,
    /// `int[n]` — `None` for unsized parameter arrays (`int a[]`).
    Array(Option<usize>),
    /// `int*`
    Ptr,
    /// `void` (function return type only)
    Void,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Array(Some(n)) => write!(f, "int[{n}]"),
            Type::Array(None) => write!(f, "int[]"),
            Type::Ptr => write!(f, "int*"),
            Type::Void => write!(f, "void"),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

impl BinOp {
    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!`.
    Not,
    /// Pointer dereference `*`.
    Deref,
    /// Address-of `&`.
    Addr,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Lit(i64),
    /// Variable reference.
    Var(String),
    /// `base[index]`
    Index(String, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience: an integer literal.
    pub fn lit(v: i64) -> Expr {
        Expr::Lit(v)
    }

    /// Convenience: a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience: a binary operation.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    /// Convenience: an array index expression.
    pub fn index(base: impl Into<String>, idx: Expr) -> Expr {
        Expr::Index(base.into(), Box::new(idx))
    }

    /// If the expression is a compile-time constant, evaluates it.
    pub fn const_eval(&self) -> Option<i64> {
        match self {
            Expr::Lit(v) => Some(*v),
            Expr::Un(UnOp::Neg, e) => e.const_eval().map(|v| v.wrapping_neg()),
            Expr::Un(UnOp::Not, e) => e.const_eval().map(|v| (v == 0) as i64),
            Expr::Bin(op, l, r) => {
                let (a, b) = (l.const_eval()?, r.const_eval()?);
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return None;
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return None;
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                    BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::LAnd => ((a != 0) && (b != 0)) as i64,
                    BinOp::LOr => ((a != 0) || (b != 0)) as i64,
                })
            }
            _ => None,
        }
    }
}

/// An assignable location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// `base[index]`
    Index(String, Box<Expr>),
    /// `*ptr`
    Deref(String),
}

impl LValue {
    /// The root variable name of the lvalue.
    pub fn base(&self) -> &str {
        match self {
            LValue::Var(n) | LValue::Index(n, _) | LValue::Deref(n) => n,
        }
    }
}

/// A statement, tagged with its [`NodeId`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stmt {
    /// Stable identity.
    pub id: NodeId,
    /// The statement proper.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StmtKind {
    /// `int x = init;` / `int a[n];`
    Decl {
        /// Declared name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer (scalars only).
        init: Option<Expr>,
    },
    /// `lhs = rhs;`
    Assign {
        /// Target location.
        lhs: LValue,
        /// Source expression.
        rhs: Expr,
    },
    /// `if (cond) { then } else { els }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { body }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (var = from; var < to; var = var + step) { body }`
    ///
    /// mini-C canonicalises counted loops into this normal form, which is
    /// what makes loop splitting (Section VI) and partitioning (Section IV)
    /// statically decidable.
    For {
        /// Induction variable.
        var: String,
        /// Initial value.
        from: Expr,
        /// Exclusive upper bound.
        to: Expr,
        /// Step (must be a positive constant in analyses).
        step: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// An expression evaluated for effect (function call).
    ExprStmt(Expr),
    /// A free-standing block `{ ... }`.
    Block(Vec<Stmt>),
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type ([`Type::Int`] or [`Type::Void`]).
    pub ret: Type,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole translation unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Unit {
    /// Global variable declarations.
    pub globals: Vec<Stmt>,
    /// Function definitions in source order.
    pub functions: Vec<Function>,
}

impl Unit {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// The largest [`NodeId`] in the unit plus one (for seeding
    /// [`NodeIdGen::starting_at`]).
    pub fn next_node_id(&self) -> u32 {
        fn walk(stmts: &[Stmt], max: &mut u32) {
            for s in stmts {
                *max = (*max).max(s.id.0 + 1);
                match &s.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, max);
                        walk(else_branch, max);
                    }
                    StmtKind::While { body, .. }
                    | StmtKind::For { body, .. }
                    | StmtKind::Block(body) => walk(body, max),
                    _ => {}
                }
            }
        }
        let mut max = 0;
        walk(&self.globals, &mut max);
        for f in &self.functions {
            walk(&f.body, &mut max);
        }
        max
    }
}

/// Visits every statement in a slice recursively, outer-first.
pub fn visit_stmts<'a>(stmts: &'a [Stmt], f: &mut dyn FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match &s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit_stmts(then_branch, f);
                visit_stmts(else_branch, f);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } | StmtKind::Block(body) => {
                visit_stmts(body, f)
            }
            _ => {}
        }
    }
}

/// Visits every expression in a statement (including nested statements).
pub fn visit_exprs<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    fn expr_walk<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
        f(e);
        match e {
            Expr::Index(_, i) => expr_walk(i, f),
            Expr::Un(_, x) => expr_walk(x, f),
            Expr::Bin(_, l, r) => {
                expr_walk(l, f);
                expr_walk(r, f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    expr_walk(a, f);
                }
            }
            _ => {}
        }
    }
    match &stmt.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                expr_walk(e, f);
            }
        }
        StmtKind::Assign { lhs, rhs } => {
            if let LValue::Index(_, i) = lhs {
                expr_walk(i, f);
            }
            expr_walk(rhs, f);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_walk(cond, f);
            for s in then_branch.iter().chain(else_branch) {
                visit_exprs(s, f);
            }
        }
        StmtKind::While { cond, body } => {
            expr_walk(cond, f);
            for s in body {
                visit_exprs(s, f);
            }
        }
        StmtKind::For {
            from,
            to,
            step,
            body,
            ..
        } => {
            expr_walk(from, f);
            expr_walk(to, f);
            expr_walk(step, f);
            for s in body {
                visit_exprs(s, f);
            }
        }
        StmtKind::Return(Some(e)) => expr_walk(e, f),
        StmtKind::Return(None) => {}
        StmtKind::ExprStmt(e) => expr_walk(e, f),
        StmtKind::Block(body) => {
            for s in body {
                visit_exprs(s, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_eval_folds_arithmetic() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::lit(2), Expr::lit(3)),
            Expr::lit(4),
        );
        assert_eq!(e.const_eval(), Some(20));
    }

    #[test]
    fn const_eval_rejects_vars_and_div_zero() {
        assert_eq!(Expr::var("x").const_eval(), None);
        assert_eq!(
            Expr::bin(BinOp::Div, Expr::lit(1), Expr::lit(0)).const_eval(),
            None
        );
    }

    #[test]
    fn node_id_gen_is_monotone() {
        let mut g = NodeIdGen::new();
        assert_eq!(g.fresh(), NodeId(0));
        assert_eq!(g.fresh(), NodeId(1));
        let mut g2 = NodeIdGen::starting_at(10);
        assert_eq!(g2.fresh(), NodeId(10));
    }

    #[test]
    fn next_node_id_spans_nesting() {
        let mut g = NodeIdGen::new();
        let inner = Stmt {
            id: g.fresh(),
            kind: StmtKind::Return(None),
        };
        let outer = Stmt {
            id: g.fresh(),
            kind: StmtKind::While {
                cond: Expr::lit(1),
                body: vec![inner],
            },
        };
        let unit = Unit {
            globals: vec![],
            functions: vec![Function {
                name: "f".into(),
                ret: Type::Void,
                params: vec![],
                body: vec![outer],
            }],
        };
        assert_eq!(unit.next_node_id(), 2);
    }

    #[test]
    fn visit_exprs_reaches_nested() {
        let mut g = NodeIdGen::new();
        let s = Stmt {
            id: g.fresh(),
            kind: StmtKind::If {
                cond: Expr::var("c"),
                then_branch: vec![Stmt {
                    id: g.fresh(),
                    kind: StmtKind::Assign {
                        lhs: LValue::Index("a".into(), Box::new(Expr::var("i"))),
                        rhs: Expr::var("x"),
                    },
                }],
                else_branch: vec![],
            },
        };
        let mut vars = Vec::new();
        visit_exprs(&s, &mut |e| {
            if let Expr::Var(n) = e {
                vars.push(n.clone());
            }
        });
        assert_eq!(vars, vec!["c", "i", "x"]);
    }
}
