//! Data-flow and dependence analysis.
//!
//! This is the *"advanced dataflow analysis"* MAPS (Section IV) applies to
//! *"extract the available parallelism from the sequential codes"*: each
//! statement is abstracted into the set of memory references it reads and
//! writes, and a dependence graph is built over statement sequences. The
//! Source Recoder (Section VI) uses the same machinery for its shared-data
//! access analysis and analyzability scoring.

use std::collections::BTreeSet;

use crate::ast::*;

/// An abstract memory reference.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemRef {
    /// A scalar variable.
    Scalar(String),
    /// An element of `array`; `Some(k)` when the subscript is the constant
    /// `k`, `None` when it is symbolic (the whole array, conservatively).
    Array(String, Option<i64>),
    /// The elements `[lo, hi)` of `array` — produced when a loop with
    /// constant bounds subscripts the array with exactly its induction
    /// variable. This range refinement is what lets split loops be proven
    /// independent (the *"advanced dataflow analysis"* MAPS relies on).
    ArrayRange(String, i64, i64),
    /// A store through a pointer whose target is unknown — conflicts with
    /// everything (the analyzability killer the recoder removes).
    Unknown,
    /// The effect of calling an unanalysed function.
    World,
}

impl MemRef {
    /// The base variable name, if the reference has one.
    pub fn base(&self) -> Option<&str> {
        match self {
            MemRef::Scalar(n) | MemRef::Array(n, _) | MemRef::ArrayRange(n, _, _) => Some(n),
            _ => None,
        }
    }

    /// Whether two references may touch the same storage.
    pub fn conflicts(&self, other: &MemRef) -> bool {
        match (self, other) {
            (MemRef::Unknown, _) | (_, MemRef::Unknown) => true,
            (MemRef::World, _) | (_, MemRef::World) => true,
            (MemRef::Scalar(a), MemRef::Scalar(b)) => a == b,
            (MemRef::Array(a, ia), MemRef::Array(b, ib)) => {
                a == b
                    && match (ia, ib) {
                        (Some(x), Some(y)) => x == y,
                        _ => true,
                    }
            }
            (MemRef::ArrayRange(a, lo, hi), MemRef::Array(b, idx))
            | (MemRef::Array(b, idx), MemRef::ArrayRange(a, lo, hi)) => {
                a == b && idx.is_none_or(|k| k >= *lo && k < *hi)
            }
            (MemRef::ArrayRange(a, alo, ahi), MemRef::ArrayRange(b, blo, bhi)) => {
                a == b && alo < bhi && blo < ahi
            }
            _ => false,
        }
    }
}

/// The read/write footprint of a statement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessSet {
    /// Locations possibly read.
    pub reads: BTreeSet<MemRef>,
    /// Locations possibly written.
    pub writes: BTreeSet<MemRef>,
}

impl AccessSet {
    /// Union of reads and writes.
    pub fn all(&self) -> impl Iterator<Item = &MemRef> {
        self.reads.iter().chain(self.writes.iter())
    }
}

/// Active loop ranges: `(induction var, lo, hi)` for enclosing
/// constant-bound loops; used to refine `a[i]` into a range reference.
type RangeEnv = Vec<(String, i64, i64)>;

fn array_ref(a: &str, idx: &Expr, env: &RangeEnv) -> MemRef {
    if let Some(k) = idx.const_eval() {
        return MemRef::Array(a.to_string(), Some(k));
    }
    if let Expr::Var(v) = idx {
        if let Some((_, lo, hi)) = env.iter().rev().find(|(n, _, _)| n == v) {
            return MemRef::ArrayRange(a.to_string(), *lo, *hi);
        }
    }
    MemRef::Array(a.to_string(), None)
}

fn expr_reads(e: &Expr, out: &mut BTreeSet<MemRef>, env: &RangeEnv) {
    match e {
        Expr::Lit(_) => {}
        Expr::Var(n) => {
            out.insert(MemRef::Scalar(n.clone()));
        }
        Expr::Index(a, i) => {
            out.insert(array_ref(a, i, env));
            expr_reads(i, out, env);
        }
        Expr::Un(UnOp::Deref, inner) => {
            out.insert(MemRef::Unknown);
            expr_reads(inner, out, env);
        }
        Expr::Un(UnOp::Addr, inner) => {
            // Taking an address reads nothing, but we record the base so the
            // escape analysis in the recoder can find it.
            if let Expr::Var(n) = &**inner {
                out.insert(MemRef::Scalar(n.clone()));
            } else {
                expr_reads(inner, out, env);
            }
        }
        Expr::Un(_, x) => expr_reads(x, out, env),
        Expr::Bin(_, l, r) => {
            expr_reads(l, out, env);
            expr_reads(r, out, env);
        }
        Expr::Call(_, args) => {
            out.insert(MemRef::World);
            for a in args {
                expr_reads(a, out, env);
            }
        }
    }
}

/// Computes the access set of one statement.
///
/// Nested control flow contributes the union of its branches/body; the
/// condition and bound expressions contribute reads.
pub fn accesses(stmt: &Stmt) -> AccessSet {
    let mut set = AccessSet::default();
    let mut env = RangeEnv::new();
    collect(stmt, &mut set, &mut env);
    set
}

fn collect(stmt: &Stmt, set: &mut AccessSet, env: &mut RangeEnv) {
    match &stmt.kind {
        StmtKind::Decl { name, init, .. } => {
            set.writes.insert(MemRef::Scalar(name.clone()));
            if let Some(e) = init {
                expr_reads(e, &mut set.reads, env);
            }
        }
        StmtKind::Assign { lhs, rhs } => {
            match lhs {
                LValue::Var(n) => {
                    set.writes.insert(MemRef::Scalar(n.clone()));
                }
                LValue::Index(a, i) => {
                    set.writes.insert(array_ref(a, i, env));
                    expr_reads(i, &mut set.reads, env);
                }
                LValue::Deref(p) => {
                    set.writes.insert(MemRef::Unknown);
                    set.reads.insert(MemRef::Scalar(p.clone()));
                }
            }
            expr_reads(rhs, &mut set.reads, env);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_reads(cond, &mut set.reads, env);
            for s in then_branch.iter().chain(else_branch) {
                collect(s, set, env);
            }
        }
        StmtKind::While { cond, body } => {
            expr_reads(cond, &mut set.reads, env);
            for s in body {
                collect(s, set, env);
            }
        }
        StmtKind::For {
            var,
            from,
            to,
            step,
            body,
        } => {
            expr_reads(from, &mut set.reads, env);
            expr_reads(to, &mut set.reads, env);
            expr_reads(step, &mut set.reads, env);
            // Constant-bound unit-step loops refine `a[var]` to a range;
            // anything else leaves subscripts symbolic.
            let range = match (from.const_eval(), to.const_eval(), step.const_eval()) {
                (Some(lo), Some(hi), Some(1)) if lo < hi => Some((var.clone(), lo, hi)),
                _ => None,
            };
            if let Some(r) = range {
                // The induction variable is fully defined by the loop
                // header (written before every read), and scalars declared
                // inside the body are scoped to it — the classic scalar
                // privatisation that makes split loops independent.
                env.push(r);
                let mut inner = AccessSet::default();
                for s in body {
                    collect(s, &mut inner, env);
                }
                env.pop();
                let mut private = vec![var.clone()];
                visit_stmts(body, &mut |s| {
                    if let StmtKind::Decl { name, .. } = &s.kind {
                        private.push(name.clone());
                    }
                });
                for name in private {
                    let p = MemRef::Scalar(name);
                    inner.reads.remove(&p);
                    inner.writes.remove(&p);
                }
                set.reads.extend(inner.reads);
                set.writes.extend(inner.writes);
            } else {
                set.writes.insert(MemRef::Scalar(var.clone()));
                set.reads.insert(MemRef::Scalar(var.clone()));
                for s in body {
                    collect(s, set, env);
                }
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                expr_reads(e, &mut set.reads, env);
            }
        }
        StmtKind::ExprStmt(e) => {
            expr_reads(e, &mut set.reads, env);
            if matches!(e, Expr::Call(..)) {
                set.writes.insert(MemRef::World);
            }
        }
        StmtKind::Block(body) => {
            for s in body {
                collect(s, set, env);
            }
        }
    }
}

/// The kind of a dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepKind {
    /// Read-after-write (true/flow dependence).
    Flow,
    /// Write-after-read (anti dependence).
    Anti,
    /// Write-after-write (output dependence).
    Output,
}

/// A dependence between two statements of a sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dependence {
    /// Index of the earlier statement.
    pub from: usize,
    /// Index of the later statement.
    pub to: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// A location that induces the dependence (one witness).
    pub witness: MemRef,
}

/// Builds the dependence graph over a statement sequence (commonly a
/// function body or loop body).
///
/// Statement `j` depends on statement `i < j` if their footprints conflict.
/// The result is sound (over-approximate): pointer stores and calls
/// serialize with everything, which is exactly why the recoder's pointer
/// elimination enlarges the schedulable parallelism.
pub fn dependences(stmts: &[Stmt]) -> Vec<Dependence> {
    let sets: Vec<AccessSet> = stmts.iter().map(accesses).collect();
    let mut deps = Vec::new();
    for j in 1..stmts.len() {
        for i in 0..j {
            // Flow: i writes, j reads.
            if let Some(w) = first_conflict(&sets[i].writes, &sets[j].reads) {
                deps.push(Dependence {
                    from: i,
                    to: j,
                    kind: DepKind::Flow,
                    witness: w,
                });
            }
            // Anti: i reads, j writes.
            if let Some(w) = first_conflict(&sets[i].reads, &sets[j].writes) {
                deps.push(Dependence {
                    from: i,
                    to: j,
                    kind: DepKind::Anti,
                    witness: w,
                });
            }
            // Output: both write.
            if let Some(w) = first_conflict(&sets[i].writes, &sets[j].writes) {
                deps.push(Dependence {
                    from: i,
                    to: j,
                    kind: DepKind::Output,
                    witness: w,
                });
            }
        }
    }
    deps
}

fn first_conflict(a: &BTreeSet<MemRef>, b: &BTreeSet<MemRef>) -> Option<MemRef> {
    for x in a {
        for y in b {
            if x.conflicts(y) {
                return Some(x.clone());
            }
        }
    }
    None
}

/// Whether two statements may run in parallel (no dependence either way).
pub fn independent(a: &Stmt, b: &Stmt) -> bool {
    let (sa, sb) = (accesses(a), accesses(b));
    first_conflict(&sa.writes, &sb.reads).is_none()
        && first_conflict(&sa.reads, &sb.writes).is_none()
        && first_conflict(&sa.writes, &sb.writes).is_none()
}

/// Analyzability report for a function body: the static properties the
/// Source Recoder (Section VI) aims to establish — *"static analyzability
/// without ambiguities resulting from pointers and irregular code
/// structure"*.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Analyzability {
    /// Number of pointer dereferences (each defeats dependence analysis).
    pub pointer_derefs: usize,
    /// Number of address-of operators (escape sites).
    pub address_ofs: usize,
    /// Number of while-loops (unbounded control).
    pub while_loops: usize,
    /// Number of canonical for-loops (analyzable).
    pub for_loops: usize,
    /// Number of calls to functions outside the unit.
    pub external_calls: usize,
}

impl Analyzability {
    /// True when dependence analysis is exact: no pointers, no escapes, no
    /// unbounded loops, no unknown calls.
    pub fn is_fully_analyzable(&self) -> bool {
        self.pointer_derefs == 0
            && self.address_ofs == 0
            && self.while_loops == 0
            && self.external_calls == 0
    }
}

/// Scores the analyzability of `func` within `unit`.
pub fn analyzability(unit: &Unit, func: &Function) -> Analyzability {
    let mut a = Analyzability::default();
    visit_stmts(&func.body, &mut |s| {
        match &s.kind {
            StmtKind::While { .. } => a.while_loops += 1,
            StmtKind::For { .. } => a.for_loops += 1,
            StmtKind::Assign {
                lhs: LValue::Deref(_),
                ..
            } => a.pointer_derefs += 1,
            _ => {}
        }
        visit_exprs(s, &mut |e| match e {
            Expr::Un(UnOp::Deref, _) => a.pointer_derefs += 1,
            Expr::Un(UnOp::Addr, _) => a.address_ofs += 1,
            Expr::Call(name, _) if unit.function(name).is_none() => {
                a.external_calls += 1;
            }
            _ => {}
        });
    });
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn body(src: &str) -> Vec<Stmt> {
        parse(src).unwrap().functions.remove(0).body
    }

    #[test]
    fn flow_dependence_detected() {
        let b = body("void f(void) { int x = 1; int y = x + 1; }");
        let deps = dependences(&b);
        assert!(deps
            .iter()
            .any(|d| d.from == 0 && d.to == 1 && d.kind == DepKind::Flow));
    }

    #[test]
    fn independent_statements_have_no_deps() {
        let b = body("void f(void) { int x = 1; int y = 2; }");
        assert!(dependences(&b).is_empty());
        assert!(independent(&b[0], &b[1]));
    }

    #[test]
    fn constant_disjoint_array_elements_are_independent() {
        let b = body("void f(int a[]) { a[0] = 1; a[1] = 2; }");
        assert!(dependences(&b).is_empty());
    }

    #[test]
    fn symbolic_subscripts_conflict() {
        let b = body("void f(int a[], int i) { a[i] = 1; a[0] = 2; }");
        let deps = dependences(&b);
        assert!(deps.iter().any(|d| d.kind == DepKind::Output));
    }

    #[test]
    fn pointer_store_serializes_everything() {
        let b = body("void f(int *p, int a[]) { *p = 1; a[0] = 2; }");
        let deps = dependences(&b);
        assert!(!deps.is_empty(), "deref must conflict with array write");
    }

    #[test]
    fn anti_dependence_detected() {
        let b = body("void f(void) { int x = 0; int y = x; x = 2; }");
        let deps = dependences(&b);
        assert!(deps
            .iter()
            .any(|d| d.from == 1 && d.to == 2 && d.kind == DepKind::Anti));
    }

    #[test]
    fn calls_are_world_barriers() {
        let b = body("void f(void) { g(); h(); }");
        let deps = dependences(&b);
        assert!(!deps.is_empty());
    }

    #[test]
    fn analyzability_scores_pointers_and_loops() {
        let u = parse(
            "void f(int *p, int a[]) { *p = 1; int x = *p; int q = ext(); \
             while (x) { x = x - 1; } for (i = 0; i < 4; i = i + 1) { a[i] = i; } }",
        )
        .unwrap();
        let a = analyzability(&u, &u.functions[0]);
        assert_eq!(a.pointer_derefs, 2);
        assert_eq!(a.while_loops, 1);
        assert_eq!(a.for_loops, 1);
        assert_eq!(a.external_calls, 1);
        assert!(!a.is_fully_analyzable());
    }

    #[test]
    fn clean_code_is_fully_analyzable() {
        let u =
            parse("void f(int a[]) { for (i = 0; i < 8; i = i + 1) { a[i] = i * 2; } }").unwrap();
        assert!(analyzability(&u, &u.functions[0]).is_fully_analyzable());
    }

    #[test]
    fn accesses_of_for_loop_include_bounds() {
        let b = body("void f(int n, int a[]) { for (i = 0; i < n; i = i + 1) { a[i] = i; } }");
        let s = accesses(&b[0]);
        assert!(s.reads.contains(&MemRef::Scalar("n".into())));
        assert!(s.writes.contains(&MemRef::Array("a".into(), None)));
    }
}
