//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a mini-C translation unit.
///
/// # Errors
///
/// Returns the first lexing or parsing [`Error`] with source position.
///
/// # Examples
///
/// ```
/// use mpsoc_minic::parser::parse;
/// let unit = parse("int inc(int x) { return x + 1; }").unwrap();
/// assert_eq!(unit.functions[0].name, "inc");
/// ```
pub fn parse(src: &str) -> Result<Unit> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        ids: NodeIdGen::new(),
    };
    p.unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    ids: NodeIdGen,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let (l, c) = self.here();
        Error::new(l, c, msg)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, k: &TokenKind) -> Result<()> {
        if self.peek() == k {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{k}`, found `{}`", self.peek())))
        }
    }

    fn eat_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn fresh(&mut self) -> NodeId {
        self.ids.fresh()
    }

    fn unit(&mut self) -> Result<Unit> {
        let mut unit = Unit::default();
        while *self.peek() != TokenKind::Eof {
            match self.peek() {
                TokenKind::KwInt | TokenKind::KwVoid => {
                    // Lookahead: `int name (` = function, else global decl.
                    let save = self.pos;
                    let ret = if self.bump() == TokenKind::KwVoid {
                        Type::Void
                    } else {
                        Type::Int
                    };
                    let is_ptr = *self.peek() == TokenKind::Star;
                    if is_ptr {
                        self.bump();
                    }
                    let name = self.eat_ident()?;
                    if *self.peek() == TokenKind::LParen && !is_ptr {
                        let f = self.function(ret, name)?;
                        unit.functions.push(f);
                    } else {
                        self.pos = save;
                        let d = self.declaration()?;
                        unit.globals.push(d);
                    }
                }
                other => {
                    return Err(self.err(format!(
                        "expected `int` or `void` at top level, found `{other}`"
                    )))
                }
            }
        }
        Ok(unit)
    }

    fn function(&mut self, ret: Type, name: String) -> Result<Function> {
        self.eat(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                if *self.peek() == TokenKind::KwVoid && *self.peek2() == TokenKind::RParen {
                    self.bump();
                    break;
                }
                self.eat(&TokenKind::KwInt)?;
                let ty;
                let pname;
                if *self.peek() == TokenKind::Star {
                    self.bump();
                    pname = self.eat_ident()?;
                    ty = Type::Ptr;
                } else {
                    pname = self.eat_ident()?;
                    if *self.peek() == TokenKind::LBracket {
                        self.bump();
                        let size = if let TokenKind::Int(v) = self.peek() {
                            let n = *v as usize;
                            self.bump();
                            Some(n)
                        } else {
                            None
                        };
                        self.eat(&TokenKind::RBracket)?;
                        ty = Type::Array(size);
                    } else {
                        ty = Type::Int;
                    }
                }
                params.push(Param { name: pname, ty });
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Function {
            name,
            ret,
            params,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.eat(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        self.eat(&TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn declaration(&mut self) -> Result<Stmt> {
        self.eat(&TokenKind::KwInt)?;
        let id = self.fresh();
        if *self.peek() == TokenKind::Star {
            self.bump();
            let name = self.eat_ident()?;
            let init = if *self.peek() == TokenKind::Assign {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            self.eat(&TokenKind::Semi)?;
            return Ok(Stmt {
                id,
                kind: StmtKind::Decl {
                    name,
                    ty: Type::Ptr,
                    init,
                },
            });
        }
        let name = self.eat_ident()?;
        if *self.peek() == TokenKind::LBracket {
            self.bump();
            let size = match self.bump() {
                TokenKind::Int(v) if v >= 0 => v as usize,
                other => {
                    return Err(self.err(format!("array size must be a literal, found `{other}`")))
                }
            };
            self.eat(&TokenKind::RBracket)?;
            self.eat(&TokenKind::Semi)?;
            return Ok(Stmt {
                id,
                kind: StmtKind::Decl {
                    name,
                    ty: Type::Array(Some(size)),
                    init: None,
                },
            });
        }
        let init = if *self.peek() == TokenKind::Assign {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.eat(&TokenKind::Semi)?;
        Ok(Stmt {
            id,
            kind: StmtKind::Decl {
                name,
                ty: Type::Int,
                init,
            },
        })
    }

    fn statement(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            TokenKind::KwInt => self.declaration(),
            TokenKind::KwIf => {
                let id = self.fresh();
                self.bump();
                self.eat(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.eat(&TokenKind::RParen)?;
                let then_branch = self.block()?;
                let else_branch = if *self.peek() == TokenKind::KwElse {
                    self.bump();
                    if *self.peek() == TokenKind::KwIf {
                        vec![self.statement()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt {
                    id,
                    kind: StmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    },
                })
            }
            TokenKind::KwWhile => {
                let id = self.fresh();
                self.bump();
                self.eat(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.eat(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt {
                    id,
                    kind: StmtKind::While { cond, body },
                })
            }
            TokenKind::KwFor => {
                let id = self.fresh();
                self.bump();
                self.eat(&TokenKind::LParen)?;
                let var = self.eat_ident()?;
                self.eat(&TokenKind::Assign)?;
                let from = self.expr()?;
                self.eat(&TokenKind::Semi)?;
                let cvar = self.eat_ident()?;
                if cvar != var {
                    return Err(self.err(format!(
                        "for-loop condition must test `{var}`, found `{cvar}`"
                    )));
                }
                self.eat(&TokenKind::Lt)?;
                let to = self.expr()?;
                self.eat(&TokenKind::Semi)?;
                let ivar = self.eat_ident()?;
                if ivar != var {
                    return Err(self.err(format!(
                        "for-loop increment must update `{var}`, found `{ivar}`"
                    )));
                }
                self.eat(&TokenKind::Assign)?;
                let vvar = self.eat_ident()?;
                if vvar != var {
                    return Err(self.err("for-loop increment must be `i = i + step`"));
                }
                self.eat(&TokenKind::Plus)?;
                let step = self.expr()?;
                self.eat(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt {
                    id,
                    kind: StmtKind::For {
                        var,
                        from,
                        to,
                        step,
                        body,
                    },
                })
            }
            TokenKind::KwReturn => {
                let id = self.fresh();
                self.bump();
                let e = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&TokenKind::Semi)?;
                Ok(Stmt {
                    id,
                    kind: StmtKind::Return(e),
                })
            }
            TokenKind::LBrace => {
                let id = self.fresh();
                let body = self.block()?;
                Ok(Stmt {
                    id,
                    kind: StmtKind::Block(body),
                })
            }
            TokenKind::Star => {
                // `*p = e;`
                let id = self.fresh();
                self.bump();
                let name = self.eat_ident()?;
                self.eat(&TokenKind::Assign)?;
                let rhs = self.expr()?;
                self.eat(&TokenKind::Semi)?;
                Ok(Stmt {
                    id,
                    kind: StmtKind::Assign {
                        lhs: LValue::Deref(name),
                        rhs,
                    },
                })
            }
            TokenKind::Ident(name) => {
                let id = self.fresh();
                self.bump();
                match self.peek().clone() {
                    TokenKind::Assign => {
                        self.bump();
                        let rhs = self.expr()?;
                        self.eat(&TokenKind::Semi)?;
                        Ok(Stmt {
                            id,
                            kind: StmtKind::Assign {
                                lhs: LValue::Var(name),
                                rhs,
                            },
                        })
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        self.eat(&TokenKind::RBracket)?;
                        self.eat(&TokenKind::Assign)?;
                        let rhs = self.expr()?;
                        self.eat(&TokenKind::Semi)?;
                        Ok(Stmt {
                            id,
                            kind: StmtKind::Assign {
                                lhs: LValue::Index(name, Box::new(idx)),
                                rhs,
                            },
                        })
                    }
                    TokenKind::LParen => {
                        self.bump();
                        let args = self.call_args()?;
                        self.eat(&TokenKind::Semi)?;
                        Ok(Stmt {
                            id,
                            kind: StmtKind::ExprStmt(Expr::Call(name, args)),
                        })
                    }
                    other => Err(self.err(format!(
                        "expected `=`, `[`, or `(` after identifier, found `{other}`"
                    ))),
                }
            }
            other => Err(self.err(format!("unexpected token `{other}` at statement start"))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>> {
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&TokenKind::RParen)?;
        Ok(args)
    }

    // Expression precedence climbing.
    fn expr(&mut self) -> Result<Expr> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::OrOr => (BinOp::LOr, 1),
                TokenKind::AndAnd => (BinOp::LAnd, 2),
                TokenKind::Pipe => (BinOp::Or, 3),
                TokenKind::Caret => (BinOp::Xor, 4),
                TokenKind::Amp => (BinOp::And, 5),
                TokenKind::EqEq => (BinOp::Eq, 6),
                TokenKind::Ne => (BinOp::Ne, 6),
                TokenKind::Lt => (BinOp::Lt, 7),
                TokenKind::Gt => (BinOp::Gt, 7),
                TokenKind::Le => (BinOp::Le, 7),
                TokenKind::Ge => (BinOp::Ge, 7),
                TokenKind::Shl => (BinOp::Shl, 8),
                TokenKind::Shr => (BinOp::Shr, 8),
                TokenKind::Plus => (BinOp::Add, 9),
                TokenKind::Minus => (BinOp::Sub, 9),
                TokenKind::Star => (BinOp::Mul, 10),
                TokenKind::Slash => (BinOp::Div, 10),
                TokenKind::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)))
            }
            TokenKind::Not => {
                self.bump();
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)))
            }
            TokenKind::Star => {
                self.bump();
                Ok(Expr::Un(UnOp::Deref, Box::new(self.unary()?)))
            }
            TokenKind::Amp => {
                self.bump();
                Ok(Expr::Un(UnOp::Addr, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Lit(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek() {
                    TokenKind::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        self.eat(&TokenKind::RBracket)?;
                        Ok(Expr::Index(name, Box::new(idx)))
                    }
                    TokenKind::LParen => {
                        self.bump();
                        let args = self.call_args()?;
                        Ok(Expr::Call(name, args))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_params() {
        let u = parse("int add(int a, int b) { return a + b; }").unwrap();
        let f = &u.functions[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
        assert!(matches!(f.body[0].kind, StmtKind::Return(Some(_))));
    }

    #[test]
    fn parses_array_and_pointer_params() {
        let u = parse("void f(int a[], int b[8], int *p) { return; }").unwrap();
        let f = &u.functions[0];
        assert_eq!(f.params[0].ty, Type::Array(None));
        assert_eq!(f.params[1].ty, Type::Array(Some(8)));
        assert_eq!(f.params[2].ty, Type::Ptr);
    }

    #[test]
    fn parses_globals_and_functions() {
        let u = parse("int g = 5;\nint a[16];\nvoid main(void) { g = g + 1; }").unwrap();
        assert_eq!(u.globals.len(), 2);
        assert_eq!(u.functions.len(), 1);
    }

    #[test]
    fn parses_canonical_for_loop() {
        let u = parse("void f(int n, int a[]) { for (i = 0; i < n; i = i + 1) { a[i] = i; } }");
        // `i` undeclared is fine for the parser (semantic checks are separate).
        let u = u.unwrap();
        match &u.functions[0].body[0].kind {
            StmtKind::For { var, step, .. } => {
                assert_eq!(var, "i");
                assert_eq!(step.const_eval(), Some(1));
            }
            k => panic!("expected for, got {k:?}"),
        }
    }

    #[test]
    fn rejects_malformed_for() {
        assert!(parse("void f(void) { for (i = 0; j < 5; i = i + 1) { } }").is_err());
        assert!(parse("void f(void) { for (i = 0; i < 5; j = j + 1) { } }").is_err());
    }

    #[test]
    fn parses_if_else_chain() {
        let u = parse(
            "int sign(int x) { if (x > 0) { return 1; } else if (x < 0) { return 0 - 1; } else { return 0; } }",
        )
        .unwrap();
        match &u.functions[0].body[0].kind {
            StmtKind::If { else_branch, .. } => {
                assert_eq!(else_branch.len(), 1);
                assert!(matches!(else_branch[0].kind, StmtKind::If { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let u = parse("void f(void) { x = 1 + 2 * 3; }").unwrap();
        match &u.functions[0].body[0].kind {
            StmtKind::Assign { rhs, .. } => assert_eq!(rhs.const_eval(), Some(7)),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_pointer_statements() {
        let u = parse("void f(int *p) { *p = 5; x = *p + 1; int *q = &x; }").unwrap();
        let b = &u.functions[0].body;
        assert!(matches!(
            b[0].kind,
            StmtKind::Assign {
                lhs: LValue::Deref(_),
                ..
            }
        ));
        assert!(matches!(b[2].kind, StmtKind::Decl { ty: Type::Ptr, .. }));
    }

    #[test]
    fn parses_calls_as_statements_and_exprs() {
        let u = parse("void f(void) { g(1, 2); x = h(3) + 1; }").unwrap();
        assert!(matches!(
            u.functions[0].body[0].kind,
            StmtKind::ExprStmt(Expr::Call(..))
        ));
    }

    #[test]
    fn node_ids_are_unique() {
        let u = parse("void f(void) { x = 1; if (x) { y = 2; } while (x) { z = 3; } }").unwrap();
        let mut ids = Vec::new();
        crate::ast::visit_stmts(&u.functions[0].body, &mut |s| ids.push(s.id));
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse("int f(int x) { return x +; }").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("expected expression"));
    }

    #[test]
    fn rejects_garbage_top_level() {
        assert!(parse("banana").is_err());
    }
}
