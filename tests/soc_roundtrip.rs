//! Declarative `.soc` platforms are bit-identical to their hand-built
//! twins.
//!
//! The committed `examples/platforms/*.soc` files replicate the testbed
//! hardware; installing the matching software image must then produce a
//! platform whose `state_checksum` stays equal to the hand-built
//! platform's at every probe point of a long run — proving the language
//! front end introduces no configuration drift (core count, frequencies,
//! memory sizes, cache geometry, peripheral pages, interconnect timing).

use mpsoc_suite::apps::testbed;
use mpsoc_suite::platform::Platform;

/// Builds the `.soc` twin of a testbed platform and installs its software.
fn soc_twin(name: &str) -> Platform {
    let path = format!(
        "{}/examples/platforms/{name}.soc",
        env!("CARGO_MANIFEST_DIR")
    );
    let mut p = testbed::load_soc_file(&path).expect("soc file compiles");
    testbed::install_software(name, &mut p).expect("software image installs");
    p
}

/// Steps both platforms in lockstep, comparing checksums every chunk.
fn assert_lockstep(mut hand: Platform, mut decl: Platform, steps: u64) {
    assert_eq!(hand.num_cores(), decl.num_cores());
    assert_eq!(hand.state_checksum(), decl.state_checksum(), "at step 0");
    let chunk = (steps / 8).max(1);
    let mut done = 0u64;
    while done < steps {
        for _ in 0..chunk {
            if hand.is_finished() {
                break;
            }
            hand.step().expect("hand-built platform steps");
            decl.step().expect("declarative platform steps");
        }
        done += chunk;
        assert_eq!(
            hand.state_checksum(),
            decl.state_checksum(),
            "checksums diverge by step {done}"
        );
        assert_eq!(hand.is_finished(), decl.is_finished());
        assert_eq!(hand.now(), decl.now());
    }
}

#[test]
fn car_radio_soc_matches_hand_built() {
    let hand = testbed::by_name("car_radio").expect("registry builds car_radio");
    assert_lockstep(hand, soc_twin("car_radio"), 20_000);
}

#[test]
fn jpeg_soc_matches_hand_built() {
    let hand = testbed::by_name("jpeg").expect("registry builds jpeg");
    assert_lockstep(hand, soc_twin("jpeg"), 20_000);
}

#[test]
fn race_soc_matches_hand_built() {
    let hand = testbed::by_name("race").expect("registry builds race");
    // The race halts on its own; lockstep past the halt point.
    assert_lockstep(hand, soc_twin("race"), 10_000);
}

#[test]
fn soc_registry_rejects_mismatched_software() {
    let path = format!("{}/examples/platforms/race.soc", env!("CARGO_MANIFEST_DIR"));
    let mut p = testbed::load_soc_file(&path).expect("race soc compiles");
    // The car-radio image needs 4 cores; the race platform has 2.
    let err = testbed::install_software("car_radio", &mut p).unwrap_err();
    assert!(!err.is_empty());
    let err = testbed::install_software("nope", &mut p).unwrap_err();
    assert!(err.contains("unknown software image"), "{err}");
}
