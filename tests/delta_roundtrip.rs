//! Delta-checkpoint round-trip properties.
//!
//! The contract under test extends `tests/snapshot_roundtrip.rs` to the
//! delta fast path: for any reachable state, restoring *base + delta*
//! ([`Platform::restore_delta`]) must be **bit-identical** to restoring a
//! full image captured at the same instant — same state checksum, same
//! continuation event stream — under both scheduler implementations, for
//! real workloads, from awkward mid-flight states (a DMA transfer half
//! done, an interrupt posted but not taken), and for any dirtying run
//! length a seeded PRNG throws at it. On top sit the two delta consumers:
//! warm-started design-space exploration must equal the cold path at every
//! thread count, and the delta fault campaign must equal the full-image
//! campaign verdict for verdict.

use mpsoc_bench::sim_fastpath::{build_car_radio, build_jpeg};
use mpsoc_suite::cic::explore::{calibrate_task_work, explore_parallel_profiled};
use mpsoc_suite::maps::mapping::{anneal_multi_profiled, profile_task_costs};
use mpsoc_suite::obs::rng::XorShift64Star;
use mpsoc_suite::platform::isa::assemble;
use mpsoc_suite::platform::platform::{
    InterconnectConfig, Platform, PlatformBuilder, SchedulerMode,
};
use mpsoc_suite::platform::{BaseImage, Frequency, PrefixSource, Time};
use mpsoc_suite::vpdebug::campaign::{
    generate_faults, run_campaign, run_campaign_delta, CampaignConfig, FaultSpace,
};

/// Steps `p` for `n` steps or until idle, recycling events.
fn run_steps(p: &mut Platform, n: u64) {
    for _ in 0..n {
        let ev = p.step().expect("platform steps");
        let done = ev.is_idle();
        p.recycle(ev);
        if done {
            break;
        }
    }
}

/// The core equivalence: at the current state of `p` (whose dirty bitmaps
/// are relative to `base`), a delta restore must land on the identical
/// state as a full capture/restore — and both must continue identically
/// for `steps` more steps.
fn assert_delta_equals_full(p: &mut Platform, base: &BaseImage, steps: u64) {
    let delta = p.capture_delta().expect("delta captures");
    let full = p.capture().expect("full captures");

    let mut via_full = Platform::from_image(&full).expect("full image restores");
    let mut via_delta = Platform::from_image(base.image()).expect("base restores");
    via_delta
        .restore_delta(base, &delta)
        .expect("delta restores");

    assert_eq!(
        via_full.state_checksum(),
        via_delta.state_checksum(),
        "base + delta must reproduce the full capture exactly"
    );
    for i in 0..steps {
        let ea = via_full.step().expect("full-restored platform steps");
        let eb = via_delta.step().expect("delta-restored platform steps");
        assert_eq!(ea, eb, "step {i} diverged between full and delta restore");
        let done = ea.is_idle();
        via_full.recycle(ea);
        via_delta.recycle(eb);
        if done {
            break;
        }
    }
    assert_eq!(via_full.state_checksum(), via_delta.state_checksum());
}

/// The headline property: on both real workloads, under both schedulers,
/// for seeded-random dirtying run lengths, base + delta equals a full
/// capture taken at the same instant.
#[test]
fn delta_restore_is_bit_identical_for_random_run_lengths() {
    let mut rng = XorShift64Star::new(0xD417A);
    for mode in [SchedulerMode::ScanReference, SchedulerMode::Calendar] {
        for build in [
            &build_car_radio as &dyn Fn(SchedulerMode) -> Platform,
            &build_jpeg,
        ] {
            let mut p = build(mode);
            run_steps(&mut p, 400);
            let mut base =
                BaseImage::new(p.capture().expect("base captures")).expect("base decodes");
            for _ in 0..3 {
                run_steps(&mut p, rng.u64_in(1, 300));
                assert_delta_equals_full(&mut p, &base, 400);
                // The full capture inside assert_delta_equals_full re-based
                // `p`'s dirty bitmaps; anchor a matching BaseImage for the
                // next round.
                base = BaseImage::new(p.capture().expect("re-base captures"))
                    .expect("re-base decodes");
            }
        }
    }
}

/// A mesh platform with a periodic timer interrupting core 0 and a DMA
/// engine streaming through the NoC — the awkward-state testbed.
fn build_mesh_dma_platform() -> (Platform, usize) {
    let mut p = PlatformBuilder::new()
        .cores(4, Frequency::mhz(100))
        .shared_words(2048)
        .interconnect(InterconnectConfig::Mesh {
            w: 3,
            h: 2,
            hop_latency: Time::from_ns(20),
            link_occupancy: Time::from_ns(8),
        })
        .build()
        .expect("mesh platform builds");
    let timer = p.add_timer("tick");
    let dma = p.add_dma("stream");
    let page_base = |page: usize| 0xF000_0000u32 + (page as u32) * 0x100;
    let asm0 = format!(
        "isr: addi r6, r6, 1\nrti\n\
         main: movi r10, {timer:#x}\nmovi r1, 700\nst r1, r10, 0\n\
         movi r1, 0\nst r1, r10, 3\nmovi r1, 0\nst r1, r10, 4\n\
         movi r1, 1\nst r1, r10, 1\n\
         movi r14, {dma:#x}\nmovi r1, 0x40\nst r1, r14, 0\n\
         movi r1, 0x400\nst r1, r14, 1\nmovi r1, 64\nst r1, r14, 2\n\
         movi r1, 1\nst r1, r14, 3\n\
         movi r1, 0\nmovi r2, 200000\n\
         loop: ld r3, r1, 0x100\nadd r4, r4, r3\nst r4, r1, 0x180\n\
         addi r1, r1, 1\nblt r1, r2, loop\nhalt\n",
        timer = page_base(timer),
        dma = page_base(dma),
    );
    p.load_program(0, assemble(&asm0).expect("core 0 assembles"), 2)
        .expect("core 0 loads");
    p.core_mut(0)
        .expect("core 0 exists")
        .set_irq_vector(Some(0));
    for core in 1..4 {
        let asm = format!(
            "movi r1, 0\nmovi r2, 200000\nmovi r9, {}\n\
             loop: ld r3, r9, 0\nadd r4, r4, r3\nst r4, r9, 64\n\
             addi r9, r9, 1\naddi r1, r1, 1\nblt r1, r2, loop\nhalt\n",
            0x200 + core * 0x40
        );
        p.load_program(core, assemble(&asm).expect("contender assembles"), 0)
            .expect("contender loads");
    }
    (p, dma)
}

/// Delta captured while a DMA transfer is half done: the pending transfer
/// travels in the delta's small state and must restore exactly.
#[test]
fn mid_dma_delta_roundtrips() {
    let (mut p, dma) = build_mesh_dma_platform();
    let base = BaseImage::new(p.capture().expect("base captures")).expect("base decodes");
    let mut guard = 0;
    while !p.dma_in_flight(dma) {
        run_steps(&mut p, 1);
        guard += 1;
        assert!(guard < 10_000, "DMA never started");
    }
    run_steps(&mut p, 5);
    assert!(p.dma_in_flight(dma), "transfer must still be in flight");
    assert_delta_equals_full(&mut p, &base, 2_000);
}

/// Delta captured while a timer interrupt is posted but not yet taken.
#[test]
fn pending_interrupt_delta_roundtrips() {
    use mpsoc_suite::platform::platform::StepKind;
    let (mut p, _) = build_mesh_dma_platform();
    let base = BaseImage::new(p.capture().expect("base captures")).expect("base decodes");
    let mut guard = 0;
    loop {
        let ev = p.step().expect("steps to timer expiry");
        let fired = matches!(ev.kind, StepKind::PeriphEvent { .. });
        p.recycle(ev);
        if fired && p.core(0).expect("core 0 exists").irq_pending() != 0 {
            break;
        }
        guard += 1;
        assert!(guard < 50_000, "timer interrupt never became pending");
    }
    assert_delta_equals_full(&mut p, &base, 2_000);
}

/// The delta fault campaign is verdict-for-verdict identical to the
/// full-image campaign on a DMA- and peripheral-rich image, at every
/// tested thread count.
#[test]
fn delta_campaign_matches_full_campaign_on_mesh_image() {
    let (mut p, dma) = build_mesh_dma_platform();
    run_steps(&mut p, 300);
    let image = p.capture().expect("fault-site captures");
    let faults = generate_faults(
        0xFA117,
        24,
        &FaultSpace {
            cores: 4,
            periph_pages: vec![],
            dma_pages: vec![dma],
            mem_lo: 0x100,
            mem_hi: 0x400,
        },
    );
    let cfg = |threads| CampaignConfig {
        budget_steps: 800,
        output_addr: 0x180,
        output_words: 32,
        detect_addr: 0x7F0,
        threads,
    };
    let full = run_campaign(&image, &faults, cfg(1), None).expect("full campaign runs");
    for threads in [1, 2, 4] {
        let delta =
            run_campaign_delta(&image, &faults, cfg(threads), None).expect("delta campaign runs");
        assert_eq!(
            full.verdict_table(),
            delta.verdict_table(),
            "delta campaign at {threads} threads diverged"
        );
        assert_eq!(full, delta);
    }
}

/// Snapshot warm-started DSE — both the MAPS annealer and the CIC
/// exploration — equals the cold path bit for bit at 1/2/4/8 threads.
#[test]
fn warm_started_dse_matches_cold_at_every_thread_count() {
    // A measurement run depositing per-task profile words at 0x100.
    let build = || -> mpsoc_suite::platform::Result<Platform> {
        let mut p = PlatformBuilder::new()
            .cores(1, Frequency::mhz(100))
            .shared_words(512)
            .cache(None)
            .build()?;
        let prog = assemble(
            "movi r1, 0x100\nmovi r2, 310\nst r2, r1, 0\nmovi r2, 520\nst r2, r1, 1\n\
             movi r2, 140\nst r2, r1, 2\nmovi r2, 60\nst r2, r1, 3\nhalt",
        )
        .expect("profile program assembles");
        p.load_program(0, prog, 0)?;
        Ok(p)
    };
    let steps = 14;
    let cold = PrefixSource::Cold {
        build: &build,
        steps,
    };
    let mut p = build().expect("profile platform builds");
    run_steps(&mut p, steps);
    let image = p.capture().expect("profile platform captures");
    let warm = PrefixSource::Warm { image: &image };

    // MAPS: a diamond task graph, re-costed from the profile.
    let graph = mpsoc_suite::maps::taskgraph::TaskGraph {
        tasks: (0..4)
            .map(|i| mpsoc_suite::maps::taskgraph::Task {
                name: format!("t{i}"),
                cost: 50,
                pref: None,
                stmts: vec![i],
            })
            .collect(),
        edges: [(0, 1), (0, 2), (1, 3), (2, 3)]
            .into_iter()
            .map(|(from, to)| mpsoc_suite::maps::taskgraph::TaskEdge {
                from,
                to,
                volume: 1,
            })
            .collect(),
    };
    let arch = mpsoc_suite::maps::arch::ArchModel::homogeneous(3);
    assert_eq!(
        profile_task_costs(&graph, &warm, 0x100)
            .expect("warm profile reads")
            .tasks
            .iter()
            .map(|t| t.cost)
            .collect::<Vec<_>>(),
        vec![310, 520, 140, 60]
    );
    let cold_map =
        anneal_multi_profiled(&graph, &arch, 7, 300, 6, 1, &cold, 0x100).expect("cold anneal");
    for threads in [1, 2, 4, 8] {
        let warm_map = anneal_multi_profiled(&graph, &arch, 7, 300, 6, threads, &warm, 0x100)
            .expect("warm anneal");
        assert_eq!(cold_map, warm_map, "anneal diverged at {threads} threads");
    }

    // CIC: a 3-task pipeline, work-calibrated from the same profile.
    let unit = mpsoc_suite::minic::parse(
        "void gen(int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = k; } }\n\
         void work(int in[], int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = in[k] * 3; } }\n\
         void fin(int in[]) { int x = in[0]; }",
    )
    .expect("cic source parses");
    let task = |name: &str, work| mpsoc_suite::cic::model::CicTask {
        name: name.into(),
        body_fn: name.into(),
        period: None,
        deadline: None,
        work,
    };
    let chan = |name: &str, src, dst| mpsoc_suite::cic::model::CicChannel {
        name: name.into(),
        src,
        dst,
        tokens: 4,
    };
    let model = mpsoc_suite::cic::model::CicModel::new(
        unit,
        vec![task("gen", 200), task("work", 800), task("fin", 100)],
        vec![chan("a", 0, 1), chan("b", 1, 2)],
    )
    .expect("cic model builds");
    assert_eq!(
        calibrate_task_work(&model, &warm, 0x100)
            .expect("warm calibration reads")
            .tasks
            .iter()
            .map(|t| t.work)
            .collect::<Vec<_>>(),
        vec![310, 520, 140]
    );
    let cold_e =
        explore_parallel_profiled(&model, 1_200, 4, 4, 1, &cold, 0x100).expect("cold explore");
    for threads in [1, 2, 4, 8] {
        let warm_e = explore_parallel_profiled(&model, 1_200, 4, 4, threads, &warm, 0x100)
            .expect("warm explore");
        assert_eq!(cold_e, warm_e, "explore diverged at {threads} threads");
    }
}
