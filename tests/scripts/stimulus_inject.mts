# Stimulus injection rides the monitor `stimulus-record` path: each
# injection applies immediately AND lands in the replayable stimulus log.
# Poked memory and written signals are observable at once, and the
# perturbed run still reaches its clean verdict (the poke targets an
# unused word).
platform e12
step 10
inject poke 0x300 7
inject signal test_flag 3
expect mem 0x300 == 7
expect sig test_flag == 3
budget 200000
run
expect stop exited
expect mem 0x210 == 0
