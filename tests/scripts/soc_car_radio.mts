# Declarative-platform scenario: load the car-radio hardware from its
# committed .soc description (mpsoc-pdl), install the standard car_radio
# software image, and re-run the ISR liveness checks — proving the
# language front end produces debuggable platforms equivalent to the
# hand-built registry entry (tests/soc_roundtrip.rs pins bit-identity).
platform examples/platforms/car_radio.soc car_radio
run 50000
expect stop budget
expect reg 0 6 >= 100
expect reg 1 6 >= 100
expect reg 0 1 > 0
