# Race: two cores increment an unguarded counter at 0x40, 200 iterations
# each. Break at the loop head, prove step-back restores the exact pc,
# then run to completion: the deterministic interleaving loses every
# overlapping update, so the counter ends at 200, not 400.
platform race
time-travel 8 32
break 3
run
expect stop breakpoint
expect pc 0 == 3
step
step-back
expect pc 0 == 3
unbreak 3
run
expect stop exited
expect mem 0x40 == 200
