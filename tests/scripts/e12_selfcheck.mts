# E12 fault target, fault-free: the redundant computation must agree and
# the DMA-streamed block must verify. Detect flag (0x210) stays clear and
# the 32-word destination block sums to the golden 848.
platform e12
budget 200000
run
expect stop exited
expect mem 0x210 == 0
expect sum 0x240 32 == 848
# Core 0 saw at least one timer tick along the way.
expect reg 0 6 >= 1
