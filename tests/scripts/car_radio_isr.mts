# Car radio: the dual-tuner chain's timer clocks must actually interrupt.
# Each core's ISR (pc 0..1) bumps r6 on every tick; after a bounded run the
# chain is still going (budget stop, not exit) and core 0 has serviced a
# healthy number of interrupts (empirically 1355 at 50k steps — pinned
# loosely so clock retuning doesn't churn this script).
platform car_radio
run 50000
expect stop budget
expect reg 0 6 >= 100
expect reg 1 6 >= 100
# The sample loop is making progress too (loop counter r1 is live).
expect reg 0 1 > 0
