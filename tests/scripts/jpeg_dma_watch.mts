# JPEG: the block DMA must be the first writer into the frame-buffer
# destination region [2048, 2112). A write watchpoint over the region
# stops on the temporally first faulting access — the stream's first word
# at exactly 2048 (0x800).
platform jpeg
watch write 2048 64
run
expect stop watchpoint
expect watch-addr == 0x800
# The word the DMA just copied came from the zero-initialised source.
expect mem 0x800 == 0
unwatch write 2048 64
