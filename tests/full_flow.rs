//! Cross-crate integration tests: each test exercises a complete tool flow
//! spanning several crates, the way the paper's figures chain their boxes.

use mpsoc_suite::cic::archfile::ArchInfo;
use mpsoc_suite::cic::model::from_dataflow;
use mpsoc_suite::cic::translator::{auto_map, execute_translation, translate};
use mpsoc_suite::dataflow::graph::{ActorKind, Graph};
use mpsoc_suite::maps::arch::ArchModel;
use mpsoc_suite::maps::codegen::generate;
use mpsoc_suite::maps::mapping::list_schedule;
use mpsoc_suite::maps::taskgraph::extract_task_graph;
use mpsoc_suite::minic::cost::CostModel;
use mpsoc_suite::platform::isa::assemble;
use mpsoc_suite::platform::mem::periph_addr;
use mpsoc_suite::platform::periph::{mailbox_reg, timer_reg};
use mpsoc_suite::platform::platform::PlatformBuilder;
use mpsoc_suite::platform::Frequency;
use mpsoc_suite::recoder::recoder::Recoder;
use mpsoc_suite::recoder::transforms;
use mpsoc_suite::vpdebug::debugger::{Debugger, Stop, Watchpoint};

/// Figure 1 end to end: sequential C → recoder split → task graph →
/// mapping → per-PE code that still parses as mini-C.
#[test]
fn maps_figure1_flow() {
    let src = mpsoc_suite::apps::jpeg::jpeg_frame_minic_source(32);
    let mut session = Recoder::from_source(&src).unwrap();
    session
        .apply(|u| transforms::split_loop(u, "encode_frame", 0, 4))
        .unwrap();
    let graph = extract_task_graph(session.unit(), "encode_frame", &CostModel::default()).unwrap();
    assert_eq!(graph.tasks.len(), 4);
    assert!(graph.edges.is_empty(), "split blocks are independent");

    let arch = ArchModel::homogeneous(4);
    let mapping = list_schedule(&graph, &arch).unwrap();
    let speedup = graph.total_cost() as f64 / mapping.makespan as f64;
    assert!(speedup > 3.5, "speedup {speedup}");

    let codes = generate(session.unit(), "encode_frame", &graph, &mapping, &arch).unwrap();
    assert_eq!(codes.len(), 4);
    for code in codes {
        mpsoc_suite::minic::parse(&code.source)
            .unwrap_or_else(|e| panic!("generated code for {} invalid: {e}", code.pe));
    }
}

/// Figure 2's automatic front end: dataflow model → CIC → both targets,
/// identical outputs.
#[test]
fn dataflow_to_cic_retargeting() {
    let mut g = Graph::new();
    let src = g.add_actor("sensor", vec![10], ActorKind::Source { period: 500 });
    let f1 = g.add_actor("filter", vec![80], ActorKind::Regular);
    let f2 = g.add_actor("scale", vec![40], ActorKind::Regular);
    let snk = g.add_actor("log", vec![5], ActorKind::Sink { period: 500 });
    g.add_channel(src, f1, vec![4], vec![4], 0).unwrap();
    g.add_channel(f1, f2, vec![4], vec![4], 0).unwrap();
    g.add_channel(f2, snk, vec![4], vec![4], 0).unwrap();

    let model = from_dataflow(&g).unwrap();
    let reference = mpsoc_suite::cic::executor::execute(&model, 4).unwrap();
    assert!(!reference.sinks.is_empty());
    for arch in [ArchInfo::cell_like(2), ArchInfo::smp_like(3)] {
        let mapping = auto_map(&model, &arch).unwrap();
        let t = translate(&model, &arch, &mapping).unwrap();
        let run = execute_translation(&model, &t, 4).unwrap();
        assert_eq!(run.sinks, reference.sinks, "target {}", arch.name);
    }
}

/// Platform + debugger: a timer-driven interrupt handler observed through
/// a signal watchpoint, with non-intrusive peripheral inspection.
#[test]
fn platform_debugger_timer_flow() {
    let mut p = PlatformBuilder::new()
        .cores(1, Frequency::mhz(100))
        .shared_words(512)
        .build()
        .unwrap();
    let page = p.add_timer("tick");
    let period = periph_addr(page, timer_reg::PERIOD);
    let ctrl = periph_addr(page, timer_reg::CTRL);
    let prog = assemble(&format!(
        "movi r1, {period}\nmovi r2, 200\nst r2, r1, 0\n\
         movi r1, {ctrl}\nmovi r2, 1\nst r2, r1, 0\n\
         spin: wfi\njmp spin\n\
         isr: movi r3, 0x40\nld r4, r3, 0\naddi r4, r4, 1\nst r4, r3, 0\nrti"
    ))
    .unwrap();
    let isr = prog.label("isr").unwrap();
    p.load_program(0, prog, 0).unwrap();
    p.core_mut(0).unwrap().set_irq_vector(Some(isr));
    let mut dbg = Debugger::new(p);
    dbg.add_watchpoint(Watchpoint::Signal {
        name: "tick.tick".into(),
        value: None,
    });
    // First tick fires the signal watchpoint.
    assert!(matches!(dbg.run(100_000).unwrap(), Stop::Watchpoint { .. }));
    // Non-intrusive peripheral inspection mid-run.
    let snap = dbg.peripheral(page).unwrap();
    assert!(snap.contains(&(timer_reg::CTRL, 1)));
    // Let several interrupts land; the handler counter grows.
    dbg.clear_conditions();
    for _ in 0..2_000 {
        if dbg.step().unwrap().is_some() {
            break;
        }
    }
    assert!(dbg.read_mem(0x40).unwrap() >= 2);
    // The IRQ trace recorded deliveries.
    assert!(!dbg.trace().irq_history().is_empty());
}

/// The mailbox-based message-passing style of Section II, on the real
/// platform: producer/consumer through a hardware FIFO with interrupts.
#[test]
fn mailbox_message_passing_flow() {
    let mut p = PlatformBuilder::new()
        .cores(2, Frequency::mhz(100))
        .shared_words(512)
        .build()
        .unwrap();
    let page = p.add_mailbox("mb", 8);
    let data = periph_addr(page, mailbox_reg::DATA);
    let count = periph_addr(page, mailbox_reg::COUNT);
    let producer = assemble(&format!(
        "movi r1, {data}\nmovi r2, 1\n\
         loop: st r2, r1, 0\naddi r2, r2, 1\nmovi r3, 6\nblt r2, r3, loop\nhalt"
    ))
    .unwrap();
    let consumer = assemble(&format!(
        "movi r1, {count}\nmovi r4, 0\nmovi r6, 5\n\
         wait: ld r2, r1, 0\nbeq r2, r0, wait\n\
         movi r3, {data}\nld r5, r3, 0\nadd r4, r4, r5\n\
         movi r7, 0x30\nst r4, r7, 0\n\
         addi r6, r6, -1\nbne r6, r0, wait\nhalt"
    ))
    .unwrap();
    p.load_program(0, producer, 0).unwrap();
    p.load_program(1, consumer, 0).unwrap();
    p.run_to_completion(1_000_000).unwrap();
    // 1+2+3+4+5 = 15 arrived through the FIFO in order.
    assert_eq!(p.debug_read(0x30).unwrap(), 15);
}

/// E2E experiment smoke: every experiment runs and renders.
#[test]
fn experiments_render() {
    use mpsoc_bench::experiments as e;
    assert!(format!("{}", e::e1_scalability()).contains("E1"));
    assert!(format!("{}", e::e4_buffers()).contains("E4"));
    assert!(format!("{}", e::e8_recoder()).contains("E8"));
}

/// A mesh-NoC platform runs the same software as the bus platform with
/// identical functional results but different timing — topology is a pure
/// timing concern (§II.A's scalable interconnect).
#[test]
fn mesh_and_bus_platforms_agree_functionally() {
    use mpsoc_suite::platform::platform::InterconnectConfig;
    use mpsoc_suite::platform::Time;
    let run = |ic: InterconnectConfig| {
        let mut p = PlatformBuilder::new()
            .cores(4, Frequency::mhz(100))
            .shared_words(1024)
            .cache(None)
            .interconnect(ic)
            .build()
            .unwrap();
        for c in 0..4 {
            let prog = assemble(&format!(
                "movi r1, {}\nmovi r2, {}\nst r2, r1, 0\nld r3, r1, 0\nhalt",
                0x100 + c,
                (c + 1) * 11
            ))
            .unwrap();
            p.load_program(c, prog, 0).unwrap();
        }
        p.run_to_completion(100_000).unwrap();
        let mem: Vec<i64> = (0..4)
            .map(|c| p.debug_read(0x100 + c as u32).unwrap())
            .collect();
        (mem, p.now())
    };
    let (bus_mem, bus_t) = run(InterconnectConfig::Bus {
        latency: Time::from_ns(50),
        occupancy: Time::from_ns(20),
    });
    let (mesh_mem, mesh_t) = run(InterconnectConfig::Mesh {
        w: 3,
        h: 2,
        hop_latency: Time::from_ns(10),
        link_occupancy: Time::from_ns(5),
    });
    assert_eq!(bus_mem, mesh_mem, "topology must not change function");
    assert_ne!(bus_t, mesh_t, "topology must change timing");
}

/// Fine-grained DVFS mid-run (§II.A): re-clocking a core between
/// instructions accelerates only the remainder of its work.
#[test]
fn dvfs_midrun_boost() {
    let run = |boost: bool| {
        let mut p = PlatformBuilder::new()
            .cores(1, Frequency::mhz(100))
            .shared_words(64)
            .cache(None)
            .build()
            .unwrap();
        let prog = assemble("movi r1, 400\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt").unwrap();
        p.load_program(0, prog, 0).unwrap();
        let mut steps = 0u64;
        loop {
            let ev = p.step().unwrap();
            if ev.is_idle() {
                break;
            }
            steps += 1;
            if boost && steps == 100 {
                p.core_mut(0).unwrap().set_frequency(Frequency::mhz(400));
            }
        }
        p.now()
    };
    let base = run(false);
    let boosted = run(true);
    assert!(
        boosted < base,
        "boost must shorten the run: {boosted} vs {base}"
    );
    // But not by the full 4x: the first 100 steps ran at base clock.
    assert!(boosted.as_ps() * 3 > base.as_ps());
}

/// Locality manager + actor runtime together: ownership transfer is the
/// sanctioned sharing channel (§II.B's messaging-based model).
#[test]
fn locality_with_actor_ownership_transfer() {
    use mpsoc_suite::rtkernel::locality::MemoryManager;
    use mpsoc_suite::rtkernel::msg::{Message, System};
    use std::cell::RefCell;
    use std::rc::Rc;

    let mm = Rc::new(RefCell::new(MemoryManager::new(2, 128, true)));
    let region = mm.borrow_mut().alloc(0, 32).unwrap();
    // Actor on "core 1" receives the region id and accesses it — but only
    // after the producer transferred ownership inside its handler.
    let mm_c = Rc::clone(&mm);
    let mut sys = System::new();
    let consumer = sys.spawn(move |m: Message, _ctx: &mut _| {
        let r = mpsoc_suite::rtkernel::locality::RegionId::from_raw(m.data[0] as u64);
        mm_c.borrow_mut()
            .access(1, r)
            .expect("ownership arrived first");
    });
    let mm_p = Rc::clone(&mm);
    let producer = sys.spawn(
        move |m: Message, ctx: &mut mpsoc_suite::rtkernel::msg::Ctx| {
            let r = mpsoc_suite::rtkernel::locality::RegionId::from_raw(m.data[0] as u64);
            mm_p.borrow_mut().access(0, r).unwrap();
            mm_p.borrow_mut().transfer(r, 1).unwrap();
            ctx.send(consumer, m);
        },
    );
    sys.post(producer, Message::new(0, vec![region.into_raw() as i64]))
        .unwrap();
    sys.run(100).unwrap();
    assert_eq!(mm.borrow().violations(), 0);
    assert_eq!(mm.borrow().region(region).unwrap().owner, 1);
}
