//! Property-based tests over the suite's core data structures and
//! invariants. Each property encodes something the documentation promises
//! unconditionally, checked over a few hundred deterministic random cases
//! drawn from the suite's seeded [`XorShift64Star`] generator (so the whole
//! test run is reproducible and needs no external crates).

use mpsoc_suite::obs::rng::XorShift64Star;

use mpsoc_suite::dataflow::graph::{ActorKind, Graph};
use mpsoc_suite::maps::arch::ArchModel;
use mpsoc_suite::maps::mapping::{evaluate, list_schedule};
use mpsoc_suite::maps::taskgraph::{Task, TaskEdge, TaskGraph};
use mpsoc_suite::minic::interp::Interp;
use mpsoc_suite::platform::cache::Cache;
use mpsoc_suite::platform::isa::assemble;
use mpsoc_suite::platform::platform::PlatformBuilder;
use mpsoc_suite::platform::time::{Cycles, Frequency, Time};
use mpsoc_suite::rtkernel::scalability::{amdahl_speedup, boosted_amdahl_speedup};
use mpsoc_suite::rtkernel::sched::{simulate, Policy, SimConfig};
use mpsoc_suite::rtkernel::task::{TaskSpec, Workload};

// ---------------------------------------------------------------------------
// Platform substrate
// ---------------------------------------------------------------------------

/// cycles -> time -> cycles never gains cycles (rounding is upward in
/// time, downward back, so the roundtrip is >= identity).
#[test]
fn frequency_conversion_roundtrip() {
    let mut rng = XorShift64Star::new(0xf0_0001);
    for _ in 0..512 {
        let khz = rng.u64_in(1, 9_999_999);
        let cy = rng.u64_in(0, 999_999);
        let f = Frequency::khz(khz);
        let t = f.cycles_to_time(Cycles(cy));
        let back = f.time_to_cycles(t);
        assert!(back.0 >= cy, "{khz} kHz, {cy} cy -> {back:?}");
    }
}

/// Time arithmetic is monotone and saturating.
#[test]
fn time_saturating() {
    let mut rng = XorShift64Star::new(0xf0_0002);
    for _ in 0..512 {
        let ta = Time::from_ps(rng.next_u64());
        let tb = Time::from_ps(rng.next_u64());
        assert!(ta + tb >= ta);
        assert!(ta.saturating_sub(tb) <= ta);
    }
}

/// Cache accounting: hits + misses equals accesses; hit rate in [0,1].
#[test]
fn cache_accounting() {
    let mut rng = XorShift64Star::new(0xf0_0003);
    for _ in 0..64 {
        let n = rng.usize_in(1, 199);
        let addrs: Vec<u32> = (0..n).map(|_| rng.u64_in(0, 4095) as u32).collect();
        let mut c = Cache::new(16, 2, 4);
        for &a in &addrs {
            c.access(a);
        }
        assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        assert!((0.0..=1.0).contains(&c.hit_rate()));
    }
}

/// A countdown loop of any length executes exactly 2n+2 instructions
/// and always terminates — the simulator neither loses nor duplicates
/// instruction events.
#[test]
fn countdown_retires_expected() {
    let mut rng = XorShift64Star::new(0xf0_0004);
    for _ in 0..24 {
        let n = rng.i64_in(1, 199);
        let mut p = PlatformBuilder::new()
            .cores(1, Frequency::mhz(100))
            .shared_words(64)
            .cache(None)
            .build()
            .unwrap();
        let prog = assemble(&format!(
            "movi r1, {n}\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt"
        ))
        .unwrap();
        p.load_program(0, prog, 0).unwrap();
        p.run_to_completion(10_000_000).unwrap();
        assert_eq!(p.core(0).unwrap().retired(), (2 * n + 2) as u64);
    }
}

/// The platform is deterministic: two identical builds produce the
/// same final time and memory for arbitrary small store programs.
#[test]
fn platform_determinism() {
    let build = |values: &[i64]| {
        let mut src = String::new();
        for (i, v) in values.iter().enumerate() {
            src.push_str(&format!(
                "movi r1, {v}\nmovi r2, {}\nst r1, r2, 0\n",
                0x10 + i
            ));
        }
        src.push_str("halt");
        let mut p = PlatformBuilder::new()
            .cores(1, Frequency::mhz(100))
            .shared_words(256)
            .build()
            .unwrap();
        p.load_program(0, assemble(&src).unwrap(), 0).unwrap();
        p.run_to_completion(1_000_000).unwrap();
        let mem: Vec<i64> = (0..values.len())
            .map(|i| p.debug_read(0x10 + i as u32).unwrap())
            .collect();
        (p.now(), mem)
    };
    let mut rng = XorShift64Star::new(0xf0_0005);
    for _ in 0..24 {
        let n = rng.usize_in(1, 11);
        let mut values = vec![0i64; n];
        rng.fill_i64(&mut values, -1000, 999);
        assert_eq!(build(&values), build(&values));
    }
}

// ---------------------------------------------------------------------------
// mini-C front end
// ---------------------------------------------------------------------------

/// A tiny generator of constant integer expressions as source text with
/// their expected value (recursive, depth-bounded).
fn const_expr(rng: &mut XorShift64Star, depth: usize) -> (String, i64) {
    if depth == 0 || rng.chance_pct(30) {
        let v = rng.i64_in(0, 99);
        return (v.to_string(), v);
    }
    let (ls, lv) = const_expr(rng, depth - 1);
    let (rs, rv) = const_expr(rng, depth - 1);
    match rng.u64_in(0, 3) {
        0 => (format!("({ls} + {rs})"), lv.wrapping_add(rv)),
        1 => (format!("({ls} - {rs})"), lv.wrapping_sub(rv)),
        2 => (format!("({ls} * {rs})"), lv.wrapping_mul(rv)),
        _ => (
            format!("({ls} + {rs} * 2)"),
            lv.wrapping_add(rv.wrapping_mul(2)),
        ),
    }
}

/// const_eval, the interpreter, and the printer agree on every
/// generated constant expression.
#[test]
fn minic_semantics_agree() {
    let mut rng = XorShift64Star::new(0xf0_0006);
    for _ in 0..128 {
        let (src, expected) = const_expr(&mut rng, 3);
        let program = format!("int f(void) {{ return {src}; }}");
        let unit = mpsoc_suite::minic::parse(&program).unwrap();
        // const_eval on the AST.
        if let mpsoc_suite::minic::StmtKind::Return(Some(e)) = &unit.functions[0].body[0].kind {
            assert_eq!(e.const_eval(), Some(expected));
        } else {
            panic!("expected return");
        }
        // The interpreter.
        let result = Interp::new(&unit).run("f", &[]).unwrap();
        assert_eq!(result, Some(expected));
        // Print -> reparse -> interpret.
        let printed = mpsoc_suite::minic::print_unit(&unit);
        let reparsed = mpsoc_suite::minic::parse(&printed).unwrap();
        let result2 = Interp::new(&reparsed).run("f", &[]).unwrap();
        assert_eq!(result2, Some(expected));
    }
}

/// Print/parse is a fixpoint for array-filling loops of any shape.
#[test]
fn minic_print_parse_fixpoint() {
    let mut rng = XorShift64Star::new(0xf0_0007);
    for _ in 0..64 {
        let n = rng.usize_in(1, 63);
        let mul = rng.i64_in(1, 49);
        let add = rng.i64_in(0, 49);
        let program = format!(
            "void f(int out[]) {{ for (i = 0; i < {n}; i = i + 1) {{ out[i] = i * {mul} + {add}; }} }}"
        );
        let u1 = mpsoc_suite::minic::parse(&program).unwrap();
        let p1 = mpsoc_suite::minic::print_unit(&u1);
        let u2 = mpsoc_suite::minic::parse(&p1).unwrap();
        let p2 = mpsoc_suite::minic::print_unit(&u2);
        assert_eq!(p1, p2);
    }
}

// ---------------------------------------------------------------------------
// Dataflow
// ---------------------------------------------------------------------------

/// Repetition vectors balance every channel of random two-actor
/// multirate graphs.
#[test]
fn repetition_vector_balances() {
    let mut rng = XorShift64Star::new(0xf0_0008);
    for _ in 0..128 {
        let p = rng.u64_in(1, 11) as u32;
        let c = rng.u64_in(1, 11) as u32;
        let mut g = Graph::new();
        let a = g.add_actor("a", vec![1], ActorKind::Regular);
        let b = g.add_actor("b", vec![1], ActorKind::Regular);
        g.add_channel(a, b, vec![p], vec![c], 0).unwrap();
        let q = g.repetition_vector().unwrap();
        assert_eq!(q[0] * p as u64, q[1] * c as u64);
        // Minimality: gcd of the vector is 1.
        let g0 = gcd(q[0], q[1]);
        assert_eq!(g0, 1);
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

// ---------------------------------------------------------------------------
// Scheduling / mapping
// ---------------------------------------------------------------------------

/// Amdahl with boost >= 1 never loses to plain Amdahl, and speedup is
/// bounded by the core count (for boost 1).
#[test]
fn amdahl_bounds() {
    let mut rng = XorShift64Star::new(0xf0_0009);
    for _ in 0..512 {
        let s = rng.f64();
        let n = rng.usize_in(1, 511);
        let plain = amdahl_speedup(s, n);
        assert!(plain <= n as f64 + 1e-9);
        assert!(boosted_amdahl_speedup(s, n, 1.5) >= plain - 1e-12);
    }
}

/// The scheduler never reports more outcomes than releases and never
/// exceeds full utilisation.
#[test]
fn sched_conservation() {
    let mut rng = XorShift64Star::new(0xf0_000a);
    for _ in 0..64 {
        let work = rng.u64_in(10, 499);
        let period = rng.u64_in(20, 99);
        let jobs = rng.usize_in(1, 19);
        let cores = rng.usize_in(1, 7);
        let mut w = Workload::new();
        w.push(TaskSpec::sequential("t", work, period).with_period(period, jobs));
        let cfg = SimConfig {
            cores,
            speed: 10,
            switch_overhead: 1,
            horizon: 4_000,
            policy: Policy::TimeShared,
        };
        let r = simulate(&w, &cfg).unwrap();
        let t = &r.tasks[0];
        assert!(t.met + t.missed <= t.released + jobs);
        assert!(r.utilization(&cfg) <= 1.0 + 1e-9);
    }
}

/// List scheduling always produces dependence-respecting schedules on
/// random fork-join graphs, and the makespan never beats the critical
/// path.
#[test]
fn mapping_respects_dependences() {
    let mut rng = XorShift64Star::new(0xf0_000b);
    for _ in 0..64 {
        let n = rng.usize_in(3, 9);
        let costs: Vec<u64> = (0..n).map(|_| rng.u64_in(1, 99)).collect();
        let pes = rng.usize_in(1, 4);
        // Fork-join: task 0 -> every middle task -> last task.
        let tasks: Vec<Task> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| Task {
                name: format!("t{i}"),
                cost: c,
                pref: None,
                stmts: vec![i],
            })
            .collect();
        let mut edges = Vec::new();
        for m in 1..n - 1 {
            edges.push(TaskEdge {
                from: 0,
                to: m,
                volume: 1,
            });
            edges.push(TaskEdge {
                from: m,
                to: n - 1,
                volume: 1,
            });
        }
        let graph = TaskGraph { tasks, edges };
        let arch = ArchModel::homogeneous(pes);
        let m = list_schedule(&graph, &arch).unwrap();
        assert!(m.makespan as u64 >= graph.critical_path());
        // Re-evaluating the assignment reproduces the same makespan.
        let again = evaluate(&graph, &arch, &m.assignment).unwrap();
        assert_eq!(again.makespan, m.makespan);
        // Start/end ordering respects edges.
        let slot = |t: usize| m.schedule.iter().find(|s| s.task == t).copied().unwrap();
        for e in &graph.edges {
            assert!(slot(e.to).start >= slot(e.from).end);
        }
    }
}

// ---------------------------------------------------------------------------
// Recoder transformations
// ---------------------------------------------------------------------------

use mpsoc_suite::recoder::recoder::Recoder;
use mpsoc_suite::recoder::transforms;

/// Generates a random but transformable mini-C function of the shape the
/// recoder walkthrough targets: constant-folded control, a pointer to an
/// output cell, and data-parallel fill loops.
fn recodeable_program(rng: &mut XorShift64Star) -> (String, usize) {
    let n = rng.i64_in(1, 63);
    let mul = rng.i64_in(1, 19);
    let add = rng.i64_in(0, 19);
    let cond = rng.u64_in(0, 1);
    let parts = rng.usize_in(2, 4);
    let ptr_idx = rng.i64_in(0, 7);
    let src = format!(
        "void f(int n, int out[]) {{\n\
         int *p = &out[{ptr_idx}];\n\
         *p = {mul};\n\
         if ({cond}) {{ out[8] = 1; }} else {{ out[8] = 2; }}\n\
         for (i = 0; i < {n}; i = i + 1) {{ out[9 + i] = i * {mul} + {add}; }}\n\
         }}"
    );
    (src, parts)
}

/// Any chain of (pointer recoding, control pruning, loop splitting)
/// preserves the observable output buffer — the recoder's contract,
/// checked against the interpreter oracle on random programs.
#[test]
fn recoder_chain_preserves_semantics() {
    let mut rng = XorShift64Star::new(0xf0_000c);
    for _ in 0..48 {
        let (src, parts) = recodeable_program(&mut rng);
        let run = |unit: &mpsoc_suite::minic::Unit| {
            let mut it = Interp::new(unit);
            it.set_max_steps(5_000_000);
            let out = it.alloc_array(&[0i64; 96]);
            it.run("f", &[96, out]).unwrap();
            it.read_array(out, 96).unwrap()
        };
        let reference_unit = mpsoc_suite::minic::parse(&src).unwrap();
        let reference = run(&reference_unit);

        let mut session = Recoder::from_source(&src).unwrap();
        session
            .apply(|u| transforms::recode_pointers(u, "f"))
            .unwrap();
        session
            .apply(|u| transforms::prune_control(u, "f"))
            .unwrap();
        // Splitting may legitimately refuse tiny loops; only require
        // success when the trip count allows it.
        let _ = session.apply(|u| transforms::split_loop(u, "f", 0, parts));
        assert_eq!(run(session.unit()), reference);
        // And the result is pointer-free regardless.
        let score = mpsoc_suite::minic::analysis::analyzability(
            session.unit(),
            &session.unit().functions[0],
        );
        assert_eq!(score.pointer_derefs, 0);
    }
}

/// Undo is an exact inverse for any applied transformation.
#[test]
fn recoder_undo_is_exact() {
    let mut rng = XorShift64Star::new(0xf0_000d);
    for _ in 0..48 {
        let (src, _parts) = recodeable_program(&mut rng);
        let mut session = Recoder::from_source(&src).unwrap();
        let before = session.document().to_string();
        session
            .apply(|u| transforms::recode_pointers(u, "f"))
            .unwrap();
        session.undo().unwrap();
        assert_eq!(session.document(), &before);
    }
}

// ---------------------------------------------------------------------------
// Dataflow executors
// ---------------------------------------------------------------------------

use mpsoc_suite::dataflow::buffer::{is_wait_free, minimal_capacities};
use mpsoc_suite::dataflow::selftimed::{run_self_timed, SelfTimedConfig, WcetTimes};

/// For random feasible three-stage pipelines, the computed minimal
/// capacities are wait-free and genuinely minimal per channel.
#[test]
fn buffer_sizing_sound_and_minimal() {
    let mut rng = XorShift64Star::new(0xf0_000e);
    for _ in 0..48 {
        let w1 = rng.u64_in(1, 39);
        let w2 = rng.u64_in(1, 79);
        let w3 = rng.u64_in(1, 39);
        let frame = rng.u64_in(1, 4) as u32;
        let period = 100u64;
        let mut g = Graph::new();
        let a = g.add_actor("src", vec![w1], ActorKind::Source { period });
        let b = g.add_actor("mid", vec![w2], ActorKind::Regular);
        let c = g.add_actor("snk", vec![w3], ActorKind::Sink { period });
        g.add_channel(a, b, vec![frame], vec![frame], 0).unwrap();
        g.add_channel(b, c, vec![frame], vec![frame], 0).unwrap();
        let caps = minimal_capacities(&g, 12).unwrap();
        assert!(is_wait_free(&g, &caps, 12).unwrap());
        for ch in 0..caps.len() {
            if caps[ch] > 1 {
                let mut smaller = caps.clone();
                smaller[ch] -= 1;
                assert!(!is_wait_free(&g, &smaller, 12).unwrap());
            }
        }
    }
}

/// Self-timed execution conserves tokens: the sink consumes exactly
/// iterations × frame tokens, no matter the rates.
#[test]
fn self_timed_conserves_tokens() {
    let mut rng = XorShift64Star::new(0xf0_000f);
    for _ in 0..64 {
        let frame = rng.u64_in(1, 5) as u32;
        let iters = rng.u64_in(1, 11);
        let mut g = Graph::new();
        let a = g.add_actor("src", vec![5], ActorKind::Source { period: 1_000 });
        let b = g.add_actor("snk", vec![5], ActorKind::Sink { period: 1_000 });
        g.add_channel(a, b, vec![frame], vec![frame], 0).unwrap();
        let r = run_self_timed(
            &g,
            &SelfTimedConfig {
                iterations: iters,
                ..Default::default()
            },
            &mut WcetTimes,
        )
        .unwrap();
        let sink_firings = r.firings.iter().filter(|f| f.actor.0 == 1).count() as u64;
        assert_eq!(sink_firings, iters);
    }
}
