//! Whole-platform checkpoint/restore round-trip properties.
//!
//! The contract under test is the one `mpsoc-platform`'s [`snapshot`]
//! module documents: `restore(capture(p))` yields a platform that
//! continues **bit-identically** — the same [`StepEvent`] stream, the same
//! final state checksum, the same simulated clock — under both scheduler
//! implementations, for real workloads, and from awkward mid-flight states
//! (a DMA transfer half done, an interrupt posted but not yet taken, mesh
//! links still occupied, a checkpoint taken exactly at a watchpoint hit).
//!
//! [`snapshot`]: mpsoc_suite::platform::snapshot

use mpsoc_bench::sim_fastpath::{build_car_radio, build_jpeg};
use mpsoc_suite::platform::isa::assemble;
use mpsoc_suite::platform::platform::{
    InterconnectConfig, Platform, PlatformBuilder, SchedulerMode,
};
use mpsoc_suite::platform::{Frequency, Time};
use mpsoc_suite::vpdebug::{Debugger, OriginFilter, Stop, Watchpoint};

/// Restores `image` into a fresh platform and steps it in lockstep with
/// the original for up to `steps` steps, requiring the identical event
/// stream and identical final checksums.
fn assert_identical_continuation(mut original: Platform, image: &[u8], steps: u64) {
    let mut restored = Platform::from_image(image).expect("image restores");
    assert_eq!(
        original.state_checksum(),
        restored.state_checksum(),
        "restored platform must start from the captured state"
    );
    for i in 0..steps {
        let ea = original.step().expect("original steps");
        let eb = restored.step().expect("restored steps");
        assert_eq!(ea, eb, "step {i} diverged after restore");
        let done = ea.is_idle();
        original.recycle(ea);
        restored.recycle(eb);
        if done {
            break;
        }
    }
    assert_eq!(original.now(), restored.now());
    assert_eq!(original.state_checksum(), restored.state_checksum());
}

/// The headline property, over three real workloads — including the
/// 48-peripheral car radio — under both scheduler implementations.
#[test]
fn capture_restore_run_is_bit_identical_across_workloads() {
    for mode in [SchedulerMode::ScanReference, SchedulerMode::Calendar] {
        for (name, build) in [
            (
                "car_radio",
                &build_car_radio as &dyn Fn(SchedulerMode) -> Platform,
            ),
            ("jpeg", &build_jpeg),
        ] {
            let mut p = build(mode);
            for _ in 0..500 {
                let ev = p.step().expect("warmup steps");
                p.recycle(ev);
            }
            let image = p.capture().expect("workload captures");
            assert!(!image.is_empty(), "{name}: empty image");
            assert_identical_continuation(p, &image, 1_500);
        }
    }
    // Third workload: the E9 Heisenbug race pair (unsynchronised
    // read-modify-write on a shared counter).
    let mut p = mpsoc_suite::vpdebug::build_race_platform(200).expect("race platform builds");
    for _ in 0..300 {
        let ev = p.step().expect("race warmup steps");
        p.recycle(ev);
    }
    let image = p.capture().expect("race platform captures");
    assert_identical_continuation(p, &image, 5_000);
}

/// A 3×2-mesh platform with a timer interrupting core 0 and a DMA engine
/// streaming through the NoC — the edge-state testbed.
fn build_mesh_dma_platform() -> (Platform, usize) {
    let mut p = PlatformBuilder::new()
        .cores(4, Frequency::mhz(100))
        .shared_words(2048)
        .interconnect(InterconnectConfig::Mesh {
            w: 3,
            h: 2,
            hop_latency: Time::from_ns(20),
            link_occupancy: Time::from_ns(8),
        })
        .build()
        .expect("mesh platform builds");
    let timer = p.add_timer("tick");
    let dma = p.add_dma("stream");
    let page_base = |page: usize| 0xF000_0000u32 + (page as u32) * 0x100;

    // Core 0: enable a fast periodic timer, kick a long DMA transfer, then
    // hammer shared memory so mesh links stay occupied.
    let asm0 = format!(
        "isr: addi r6, r6, 1\n\
         rti\n\
         main: movi r10, {timer:#x}\n\
         movi r1, 700\n\
         st r1, r10, 0\n\
         movi r1, 0\n\
         st r1, r10, 3\n\
         movi r1, 0\n\
         st r1, r10, 4\n\
         movi r1, 1\n\
         st r1, r10, 1\n\
         movi r14, {dma:#x}\n\
         movi r1, 0x40\n\
         st r1, r14, 0\n\
         movi r1, 0x400\n\
         st r1, r14, 1\n\
         movi r1, 64\n\
         st r1, r14, 2\n\
         movi r1, 1\n\
         st r1, r14, 3\n\
         movi r1, 0\n\
         movi r2, 200000\n\
         loop: ld r3, r1, 0x100\n\
         add r4, r4, r3\n\
         st r4, r1, 0x180\n\
         addi r1, r1, 1\n\
         blt r1, r2, loop\n\
         halt\n",
        timer = page_base(timer),
        dma = page_base(dma),
    );
    p.load_program(0, assemble(&asm0).expect("core 0 assembles"), 2)
        .expect("core 0 loads");
    p.core_mut(0)
        .expect("core 0 exists")
        .set_irq_vector(Some(0));

    // Cores 1–3: contend for shared memory through different mesh routes.
    for core in 1..4 {
        let asm = format!(
            "movi r1, 0\n\
             movi r2, 200000\n\
             movi r9, {}\n\
             loop: ld r3, r9, 0\n\
             add r4, r4, r3\n\
             st r4, r9, 64\n\
             addi r9, r9, 1\n\
             addi r1, r1, 1\n\
             blt r1, r2, loop\n\
             halt\n",
            0x200 + core * 0x40
        );
        p.load_program(core, assemble(&asm).expect("contender assembles"), 0)
            .expect("contender loads");
    }
    (p, dma)
}

/// Capture while a DMA transfer is half done: the pending transfer (and
/// its completion event) must survive the round-trip.
#[test]
fn mid_dma_transfer_roundtrips() {
    let (mut p, dma) = build_mesh_dma_platform();
    let mut guard = 0;
    while !p.dma_in_flight(dma) {
        let ev = p.step().expect("steps to DMA start");
        p.recycle(ev);
        guard += 1;
        assert!(guard < 10_000, "DMA never started");
    }
    for _ in 0..5 {
        let ev = p.step().expect("steps mid-transfer");
        p.recycle(ev);
    }
    assert!(p.dma_in_flight(dma), "transfer must still be in flight");
    let image = p.capture().expect("mid-DMA capture");
    assert_identical_continuation(p, &image, 2_000);
}

/// Capture immediately after a timer fired, while its interrupt is posted
/// on the core but not yet taken.
#[test]
fn pending_interrupt_roundtrips() {
    use mpsoc_suite::platform::platform::StepKind;
    let (mut p, _) = build_mesh_dma_platform();
    let mut guard = 0;
    loop {
        let ev = p.step().expect("steps to timer expiry");
        let fired = matches!(ev.kind, StepKind::PeriphEvent { .. });
        p.recycle(ev);
        if fired && p.core(0).expect("core 0 exists").irq_pending() != 0 {
            break;
        }
        guard += 1;
        assert!(guard < 50_000, "timer interrupt never became pending");
    }
    let image = p.capture().expect("pending-irq capture");
    assert_identical_continuation(p, &image, 2_000);
}

/// Capture at *every* one of the first 40 steps of the contended mesh
/// workload — whatever in-flight link occupancy, posted interrupts, or
/// queued events each step leaves behind must round-trip.
#[test]
fn every_early_state_roundtrips() {
    for k in 0..40 {
        let (mut p, _) = build_mesh_dma_platform();
        for _ in 0..k {
            let ev = p.step().expect("warmup steps");
            p.recycle(ev);
        }
        let image = p.capture().expect("capture at step k");
        assert_identical_continuation(p, &image, 300);
    }
}

/// A checkpoint taken exactly at a watchpoint hit must restore onto the
/// same hit: the debugger rewinds to it and re-runs to the identical stop.
#[test]
fn checkpoint_exactly_at_watchpoint_hit_roundtrips() {
    let (p, _) = build_mesh_dma_platform();
    let mut dbg = Debugger::new(p);
    let wp = dbg.add_watchpoint(Watchpoint::Access {
        lo: 0x180,
        hi: 0x180,
        kind: None,
        origin: OriginFilter::Any,
    });
    let stop = dbg.run(100_000).expect("runs to watchpoint");
    let (hit_index, hit_step) = match stop {
        Stop::Watchpoint { index, .. } => (index, dbg.platform().steps()),
        other => panic!("expected a watchpoint hit, got {other:?}"),
    };
    assert_eq!(hit_index, wp);

    // Checkpoint exactly at the hit, both as a debugger checkpoint and as
    // a raw platform image.
    dbg.enable_time_travel(1_000, 8)
        .expect("time travel enables");
    assert_eq!(dbg.checkpoint_steps(), vec![hit_step]);
    let image = dbg.platform_mut().capture().expect("captures at the hit");
    let checksum_at_hit = dbg.platform().state_checksum();

    // Step past the hit, come back, and re-run to the next stop twice —
    // the two forward runs must agree.
    for _ in 0..25 {
        dbg.step().expect("steps past the hit");
    }
    assert!(dbg.rewind_to_step(hit_step).expect("rewinds to the hit"));
    assert_eq!(dbg.platform().steps(), hit_step);
    assert_eq!(dbg.platform().state_checksum(), checksum_at_hit);

    // And the raw image restores onto the identical continuation.
    let original = Platform::from_image(&image).expect("image restores");
    assert_identical_continuation(original, &image, 1_000);
}
