//! Cross-layer determinism contract of the shared exploration engine.
//!
//! Every parallel sweep in the suite — multi-start annealing (`maps`),
//! architecture exploration (`cic`), scheduling-policy sweeps
//! (`rtkernel`), buffer-sizing search (`dataflow`), and fault-injection
//! campaigns (`vpdebug`) — now fans out through
//! [`mpsoc_suite::explore::Sweep`]. The engine promises bit-identical
//! results at any thread count and promises that a snapshot warm start
//! ([`PrefixSource::Warm`] / [`Prefix`]) equals re-simulating the prefix
//! cold. This test pins both promises **for all five flows at once**, so a
//! change to the engine's seed splitting, chunking, or merge order cannot
//! silently de-synchronise one layer from the others.

use mpsoc_suite::explore::Prefix;
use mpsoc_suite::platform::isa::assemble;
use mpsoc_suite::platform::platform::{Platform, PlatformBuilder};
use mpsoc_suite::platform::time::Frequency;
use mpsoc_suite::platform::PrefixSource;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A 1-core measurement platform whose program deposits the given profile
/// words at `0x100 + i`, plus the step count needed to finish depositing.
fn profile_platform(
    words: &[i64],
) -> (
    impl Fn() -> mpsoc_suite::platform::Result<Platform> + '_,
    u64,
) {
    let steps = 1 + 2 * words.len() as u64 + 1;
    let build = move || -> mpsoc_suite::platform::Result<Platform> {
        let mut src = String::from("movi r1, 0x100\n");
        for (i, w) in words.iter().enumerate() {
            src.push_str(&format!("movi r2, {w}\nst r2, r1, {i}\n"));
        }
        src.push_str("halt");
        let mut p = PlatformBuilder::new()
            .cores(1, Frequency::mhz(100))
            .shared_words(512)
            .cache(None)
            .build()?;
        p.load_program(0, assemble(&src).unwrap(), 0)?;
        Ok(p)
    };
    (build, steps)
}

/// Captures a snapshot at `steps` for the warm counterpart of a cold
/// prefix.
fn warm_image(build: &dyn Fn() -> mpsoc_suite::platform::Result<Platform>, steps: u64) -> Vec<u8> {
    let mut p = build().unwrap();
    for _ in 0..steps {
        p.step().unwrap();
    }
    p.capture().unwrap()
}

// ---------------------------------------------------------------------------
// maps: multi-start annealing
// ---------------------------------------------------------------------------

mod maps_flow {
    use super::*;
    use mpsoc_suite::maps::arch::ArchModel;
    use mpsoc_suite::maps::mapping::{anneal_multi, anneal_multi_profiled};
    use mpsoc_suite::maps::taskgraph::{Task, TaskEdge, TaskGraph};

    fn diamond(costs: [u64; 4]) -> TaskGraph {
        TaskGraph {
            tasks: costs
                .iter()
                .enumerate()
                .map(|(i, &c)| Task {
                    name: format!("t{i}"),
                    cost: c,
                    pref: None,
                    stmts: vec![i],
                })
                .collect(),
            edges: [(0, 1), (0, 2), (1, 3), (2, 3)]
                .iter()
                .map(|&(from, to)| TaskEdge {
                    from,
                    to,
                    volume: 2,
                })
                .collect(),
        }
    }

    #[test]
    fn anneal_multi_is_thread_count_invariant() {
        let g = diamond([37, 91, 64, 22]);
        let arch = ArchModel::homogeneous(3);
        let reference = anneal_multi(&g, &arch, 0xA11, 300, 6, 1).unwrap();
        for threads in THREADS {
            let m = anneal_multi(&g, &arch, 0xA11, 300, 6, threads).unwrap();
            assert_eq!(m, reference, "maps anneal_multi at {threads} threads");
        }
    }

    #[test]
    fn profiled_anneal_warm_equals_cold() {
        let (build, steps) = profile_platform(&[55, 40, 90, 15]);
        let image = warm_image(&build, steps);
        let cold = PrefixSource::Cold {
            build: &build,
            steps,
        };
        let warm = PrefixSource::Warm { image: &image };
        let g = diamond([37, 91, 64, 22]);
        let arch = ArchModel::homogeneous(3);
        let reference = anneal_multi_profiled(&g, &arch, 7, 200, 6, 1, &cold, 0x100).unwrap();
        for threads in THREADS {
            let m = anneal_multi_profiled(&g, &arch, 7, 200, 6, threads, &warm, 0x100).unwrap();
            assert_eq!(m, reference, "maps warm start at {threads} threads");
        }
    }
}

// ---------------------------------------------------------------------------
// cic: architecture exploration
// ---------------------------------------------------------------------------

mod cic_flow {
    use super::*;
    use mpsoc_suite::cic::{
        explore_parallel, explore_parallel_profiled, CicChannel, CicModel, CicTask,
    };

    fn model() -> CicModel {
        let unit = mpsoc_suite::minic::parse(
            "void gen(int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = k; } }\n\
             void work(int in[], int out[]) { for (k = 0; k < 4; k = k + 1) { out[k] = in[k] * 3; } }\n\
             void fin(int in[]) { int x = in[0]; }",
        )
        .unwrap();
        let task = |name: &str, period, deadline, work| CicTask {
            name: name.into(),
            body_fn: name.into(),
            period,
            deadline,
            work,
        };
        let chan = |name: &str, src, dst| CicChannel {
            name: name.into(),
            src,
            dst,
            tokens: 4,
        };
        CicModel::new(
            unit,
            vec![
                task("gen", Some(100), None, 200),
                task("work", None, None, 800),
                task("fin", None, Some(1_000), 100),
            ],
            vec![chan("a", 0, 1), chan("b", 1, 2)],
        )
        .unwrap()
    }

    #[test]
    fn explore_parallel_is_thread_count_invariant() {
        let m = model();
        let reference = explore_parallel(&m, 1_200, 4, 4, 1).unwrap();
        for threads in THREADS {
            let e = explore_parallel(&m, 1_200, 4, 4, threads).unwrap();
            assert_eq!(e, reference, "cic explore at {threads} threads");
        }
    }

    #[test]
    fn profiled_explore_warm_equals_cold() {
        let (build, steps) = profile_platform(&[300, 500, 150]);
        let image = warm_image(&build, steps);
        let cold = PrefixSource::Cold {
            build: &build,
            steps,
        };
        let warm = PrefixSource::Warm { image: &image };
        let m = model();
        let reference = explore_parallel_profiled(&m, 1_200, 4, 4, 1, &cold, 0x100).unwrap();
        for threads in THREADS {
            let e = explore_parallel_profiled(&m, 1_200, 4, 4, threads, &warm, 0x100).unwrap();
            assert_eq!(e, reference, "cic warm start at {threads} threads");
        }
    }
}

// ---------------------------------------------------------------------------
// rtkernel: scheduling-policy sweep
// ---------------------------------------------------------------------------

mod rtkernel_flow {
    use super::*;
    use mpsoc_suite::rtkernel::sched::{Policy, SimConfig};
    use mpsoc_suite::rtkernel::task::{TaskSpec, Workload};
    use mpsoc_suite::rtkernel::{sweep_policies, sweep_policies_profiled};

    fn workload() -> Workload {
        let mut w = Workload::new();
        w.push(TaskSpec::parallel("video", 10, 900, 4, 200).with_period(250, 8));
        w.push(TaskSpec::sequential("control", 40, 80).with_period(100, 20));
        w.push(TaskSpec::sequential("ui", 25, 200).with_priority(3));
        w
    }

    fn base_cfg() -> SimConfig {
        SimConfig {
            cores: 4,
            speed: 10,
            switch_overhead: 2,
            horizon: 4_000,
            policy: Policy::TimeShared,
        }
    }

    #[test]
    fn policy_sweep_is_thread_count_invariant() {
        let w = workload();
        let cfg = base_cfg();
        let boosts = [1.2, 1.5, 2.0];
        let reference = sweep_policies(&w, &cfg, &boosts, 1, None).unwrap();
        for threads in THREADS {
            let s = sweep_policies(&w, &cfg, &boosts, threads, None).unwrap();
            assert_eq!(s, reference, "rtkernel sweep at {threads} threads");
        }
    }

    #[test]
    fn profiled_policy_sweep_warm_equals_cold() {
        let (build, steps) = profile_platform(&[120, 35, 60]);
        let image = warm_image(&build, steps);
        let cold_src = PrefixSource::Cold {
            build: &build,
            steps,
        };
        let warm_src = PrefixSource::Warm { image: &image };
        let cold = Prefix::source(&cold_src);
        let warm = Prefix::source(&warm_src);
        let w = workload();
        let cfg = base_cfg();
        let boosts = [1.2, 1.5];
        let reference = sweep_policies_profiled(&w, &cfg, &boosts, 1, &cold, 0x100, None).unwrap();
        for threads in THREADS {
            let s =
                sweep_policies_profiled(&w, &cfg, &boosts, threads, &warm, 0x100, None).unwrap();
            assert_eq!(s, reference, "rtkernel warm start at {threads} threads");
        }
    }
}

// ---------------------------------------------------------------------------
// dataflow: buffer-sizing search
// ---------------------------------------------------------------------------

mod dataflow_flow {
    use super::*;
    use mpsoc_suite::dataflow::buffer::minimal_capacities;
    use mpsoc_suite::dataflow::graph::{ActorKind, Graph};
    use mpsoc_suite::dataflow::{minimal_capacities_profiled, minimal_capacities_sweep};

    fn batching(cons: u32) -> Graph {
        let mut g = Graph::new();
        let s = g.add_actor("src", vec![10], ActorKind::Source { period: 100 });
        let f = g.add_actor("f", vec![50], ActorKind::Regular);
        let k = g.add_actor(
            "snk",
            vec![5],
            ActorKind::Sink {
                period: 100 * cons as u64,
            },
        );
        g.add_channel(s, f, vec![1], vec![cons], 0).unwrap();
        g.add_channel(f, k, vec![1], vec![1], 0).unwrap();
        g
    }

    #[test]
    fn sizing_sweep_matches_serial_at_every_thread_count() {
        for cons in [1, 3, 5] {
            let g = batching(cons);
            let serial = minimal_capacities(&g, 20).unwrap();
            for threads in THREADS {
                let caps = minimal_capacities_sweep(&g, 20, threads, None).unwrap();
                assert_eq!(
                    caps, serial,
                    "dataflow sizing cons={cons} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn profiled_sizing_warm_equals_cold() {
        // Profile words re-cost src/f/snk; 0 leaves the sink untouched.
        let (build, steps) = profile_platform(&[10, 35, 0]);
        let image = warm_image(&build, steps);
        let cold_src = PrefixSource::Cold {
            build: &build,
            steps,
        };
        let warm_src = PrefixSource::Warm { image: &image };
        let cold = Prefix::source(&cold_src);
        let warm = Prefix::source(&warm_src);
        let g = batching(3);
        let reference = minimal_capacities_profiled(&g, &cold, 0x100, 20, 1, None).unwrap();
        for threads in THREADS {
            let caps = minimal_capacities_profiled(&g, &warm, 0x100, 20, threads, None).unwrap();
            assert_eq!(caps, reference, "dataflow warm start at {threads} threads");
        }
    }
}

// ---------------------------------------------------------------------------
// pdl: joint mapping×topology DSE
// ---------------------------------------------------------------------------

mod pdl_flow {
    use super::*;
    use mpsoc_suite::pdl::{joint_sweep, JointConfig};

    #[test]
    fn joint_sweep_front_and_json_are_thread_count_invariant() {
        let base = JointConfig::smoke();
        let reference = joint_sweep(&JointConfig { threads: 1, ..base }).unwrap();
        assert!(!reference.front.is_empty());
        for threads in THREADS {
            let r = joint_sweep(&JointConfig { threads, ..base }).unwrap();
            assert_eq!(
                r.front, reference.front,
                "pdl joint DSE at {threads} threads"
            );
            // The CI artifact is byte-identical, not just structurally equal.
            assert_eq!(
                r.to_json(),
                reference.to_json(),
                "pdl Pareto JSON at {threads} threads"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// vpdebug: fault-injection campaign
// ---------------------------------------------------------------------------

mod campaign_flow {
    use super::*;
    use mpsoc_suite::vpdebug::campaign::{
        generate_faults, run_campaign, run_campaign_delta, CampaignConfig, FaultSpace,
    };

    /// The redundant-sum workload from the campaign tests: output at 0x200,
    /// detect flag at 0x210, captured mid-loop so faults land in flight.
    fn fault_site_image() -> Vec<u8> {
        let mut p = PlatformBuilder::new()
            .cores(2, Frequency::mhz(100))
            .shared_words(2048)
            .cache(None)
            .build()
            .unwrap();
        let prog = assemble(
            "movi r1, 0\nmovi r2, 0\nmovi r3, 25\n\
             loop: addi r1, r1, 3\naddi r2, r2, 3\naddi r3, r3, -1\n\
             bne r3, r0, loop\n\
             movi r4, 0x200\nst r1, r4, 0\n\
             movi r5, 0x210\nseq r6, r1, r2\nmovi r7, 1\n\
             sub r6, r7, r6\nst r6, r5, 0\nhalt",
        )
        .unwrap();
        p.load_program(0, prog, 0).unwrap();
        for _ in 0..10 {
            p.step().unwrap();
        }
        p.capture().unwrap()
    }

    fn config(threads: usize) -> CampaignConfig {
        CampaignConfig {
            budget_steps: 2_000,
            output_addr: 0x200,
            output_words: 1,
            detect_addr: 0x210,
            threads,
        }
    }

    fn faults() -> Vec<mpsoc_suite::vpdebug::campaign::FaultSpec> {
        generate_faults(
            0xFA_17,
            24,
            &FaultSpace {
                cores: 2,
                periph_pages: vec![],
                dma_pages: vec![],
                mem_lo: 0x0,
                mem_hi: 0x3FF,
            },
        )
    }

    #[test]
    fn campaign_is_thread_count_invariant_and_delta_agrees() {
        let image = fault_site_image();
        let faults = faults();
        let reference = run_campaign(&image, &faults, config(1), None).unwrap();
        for threads in THREADS {
            let full = run_campaign(&image, &faults, config(threads), None).unwrap();
            assert_eq!(
                full.outcomes, reference.outcomes,
                "campaign at {threads} threads"
            );
            // Delta rollback (the warm path: one materialization + in-place
            // rewinds) classifies every fault identically.
            let delta = run_campaign_delta(&image, &faults, config(threads), None).unwrap();
            assert_eq!(
                delta.outcomes, reference.outcomes,
                "delta campaign at {threads} threads"
            );
        }
    }
}
