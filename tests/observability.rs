//! Cross-layer observability integration tests (Section VII: keeping the
//! overview during multi-core software development).
//!
//! The heavy lifting — counter semantics, ring eviction, span pairing — is
//! unit-tested inside `mpsoc-obs`; these tests exercise the seams: a real
//! two-core platform run exported as Chrome `trace_event` JSON, and the
//! shared registry spanning several simulator layers at once.

use mpsoc_suite::dataflow::{
    run_self_timed_observed, ActorKind, Graph, SelfTimedConfig, WcetTimes,
};
use mpsoc_suite::obs::event::{EventKind, ObsCtx};
use mpsoc_suite::obs::export::chrome_trace;
use mpsoc_suite::obs::metrics::MetricsRegistry;
use mpsoc_suite::obs::ring::RingSink;
use mpsoc_suite::platform::isa::assemble;
use mpsoc_suite::platform::platform::PlatformBuilder;
use mpsoc_suite::platform::Frequency;
use mpsoc_suite::rtkernel::sched::{simulate_observed, Policy, SimConfig};
use mpsoc_suite::rtkernel::task::{TaskSpec, Workload};

/// Runs a two-core producer/consumer program with a sink attached and
/// returns the exported Chrome trace plus the number of captured events.
fn two_core_trace() -> (String, usize) {
    let mut p = PlatformBuilder::new()
        .cores(2, Frequency::mhz(100))
        .shared_words(512)
        .build()
        .unwrap();
    let producer = assemble("movi r1, 0x40\nmovi r2, 7\nst r2, r1, 0\nhalt").unwrap();
    let consumer = assemble(
        "movi r1, 0x40\n\
         wait: ld r2, r1, 0\nbeq r2, r0, wait\n\
         movi r3, 0x41\nst r2, r3, 0\nhalt",
    )
    .unwrap();
    p.load_program(0, producer, 0).unwrap();
    p.load_program(1, consumer, 0).unwrap();
    let mut sink = RingSink::new(4096);
    p.run_to_completion_observed(10_000, Some(&mut sink))
        .unwrap();
    let n = sink.len();
    (chrome_trace(sink.events()), n)
}

#[test]
fn two_core_run_round_trips_through_chrome_json() {
    let (json, n_events) = two_core_trace();
    assert!(n_events > 0, "a two-core run must produce events");

    let trimmed = json.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));

    // Both cores (tids 0 and 1) show up on the platform process.
    assert!(json.contains("\"tid\":0"));
    assert!(json.contains("\"tid\":1"));
    assert!(json.contains("\"args\":{\"name\":\"platform\"}"));

    // Every record is well-formed: braces balance and the mandatory
    // name/ph/ts keys are present (metadata records carry no ts).
    let mut records = 0;
    for line in json.lines() {
        let line = line.trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        records += 1;
        assert!(line.ends_with('}'), "unterminated record: {line}");
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces: {line}"
        );
        assert!(line.contains("\"name\":\""), "record without name: {line}");
        assert!(line.contains("\"ph\":\""), "record without ph: {line}");
        if !line.contains("\"ph\":\"M\"") {
            assert!(line.contains("\"ts\":"), "record without ts: {line}");
            // Both halt instants are per-core point events.
        }
    }
    assert_eq!(
        records,
        n_events + 1,
        "one JSON record per event plus one process_name metadata record"
    );

    // Timestamps are non-decreasing in file order (Perfetto requirement
    // for well-ordered rendering).
    let mut last_ts = 0u64;
    for line in json.lines() {
        if let Some(pos) = line.find("\"ts\":") {
            let rest = &line[pos + 5..];
            let end = rest.find([',', '}']).unwrap();
            let ts: u64 = rest[..end].parse().unwrap();
            assert!(ts >= last_ts, "timestamps out of order: {ts} < {last_ts}");
            last_ts = ts;
        }
    }
}

#[test]
fn one_registry_spans_simulator_layers() {
    let reg = MetricsRegistry::new();

    // Dataflow layer.
    let mut g = Graph::new();
    let s = g.add_actor("src", vec![5], ActorKind::Source { period: 50 });
    let f = g.add_actor("f", vec![20], ActorKind::Regular);
    let k = g.add_actor("snk", vec![5], ActorKind::Sink { period: 50 });
    g.add_channel(s, f, vec![1], vec![1], 0).unwrap();
    g.add_channel(f, k, vec![1], vec![1], 0).unwrap();
    run_self_timed_observed(
        &g,
        &SelfTimedConfig::default(),
        &mut WcetTimes,
        &mut ObsCtx::counters(&reg),
    )
    .unwrap();

    // Rtkernel layer, same registry.
    let mut w = Workload::new();
    w.push(TaskSpec::sequential("job", 50, 200).with_period(100, 5));
    simulate_observed(
        &w,
        &SimConfig {
            cores: 2,
            speed: 10,
            switch_overhead: 1,
            horizon: 1_000,
            policy: Policy::TimeShared,
        },
        &mut ObsCtx::counters(&reg),
    )
    .unwrap();

    let dump = reg.dump();
    assert!(dump.contains("dataflow.firings"));
    assert!(dump.contains("sched.jobs_released"));
    assert!(reg.counter("dataflow.firings").get() > 0);
    assert!(reg.counter("sched.jobs_released").get() > 0);
    // The dump is sorted, so layers group together deterministically.
    let names: Vec<&str> = dump
        .lines()
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}

#[test]
fn sinks_and_counters_compose_across_layers_in_one_stream() {
    let reg = MetricsRegistry::new();
    let mut sink = RingSink::new(8192);

    let mut g = Graph::new();
    let s = g.add_actor("src", vec![2], ActorKind::Source { period: 10 });
    let k = g.add_actor("snk", vec![2], ActorKind::Sink { period: 10 });
    g.add_channel(s, k, vec![1], vec![1], 0).unwrap();
    run_self_timed_observed(
        &g,
        &SelfTimedConfig::default(),
        &mut WcetTimes,
        &mut ObsCtx::new(&mut sink, &reg),
    )
    .unwrap();

    let mut w = Workload::new();
    w.push(TaskSpec::sequential("t", 30, 100).with_period(50, 3));
    simulate_observed(
        &w,
        &SimConfig {
            cores: 1,
            speed: 10,
            switch_overhead: 0,
            horizon: 300,
            policy: Policy::TimeShared,
        },
        &mut ObsCtx::new(&mut sink, &reg),
    )
    .unwrap();

    let evs = sink.events();
    assert!(evs.iter().any(|e| e.cat == "dataflow"));
    assert!(evs.iter().any(|e| e.cat == "rtkernel"));
    let begins = evs.iter().filter(|e| e.kind == EventKind::Begin).count();
    let ends = evs.iter().filter(|e| e.kind == EventKind::End).count();
    assert_eq!(begins, ends, "spans from both layers must pair up");

    let json = chrome_trace(evs);
    assert!(json.contains("\"args\":{\"name\":\"dataflow\"}"));
    assert!(json.contains("\"args\":{\"name\":\"rtkernel\"}"));
}
