//! Bounded trace store equivalence: the tiered signal history (in-memory
//! ring + streaming spill) must be pure observability.
//!
//! The contract under test: switching the signal board from the retained
//! unbounded-history oracle mode to the bounded ring changes **nothing**
//! observable about execution — state checksums, captured images (byte for
//! byte), watchpoint stops, fault-campaign verdict tables at every thread
//! count, and time-travel rewinds are all bit-identical — while the ring
//! plus the spill stream still reconstruct the exact history the oracle
//! records, exactly once, even across rewinds.

use std::sync::{Arc, Mutex};

use mpsoc_bench::sim_fastpath::build_car_radio;
use mpsoc_suite::apps::testbed::build_e12;
use mpsoc_suite::obs::rng::XorShift64Star;
use mpsoc_suite::platform::isa::assemble;
use mpsoc_suite::platform::platform::{Platform, PlatformBuilder, SchedulerMode, StepKind};
use mpsoc_suite::platform::{
    BaseImage, Frequency, SignalBoard, SignalChange, Time, TraceMode, TraceSpill,
    TRACE_RECORD_BYTES,
};
use mpsoc_suite::vpdebug::campaign::{generate_faults, run_campaign, CampaignConfig, FaultSpace};
use mpsoc_suite::vpdebug::{Debugger, Stop, Watchpoint};

/// Spill sink that keeps every delivered record; the shared handle lets the
/// test read what the board-owned box received.
#[derive(Clone, Default)]
struct CollectSpill(Arc<Mutex<Vec<(u64, String, SignalChange)>>>);

impl TraceSpill for CollectSpill {
    fn record(&mut self, seq: u64, name: &str, change: SignalChange) {
        self.0.lock().unwrap().push((seq, name.to_string(), change));
    }
}

/// Steps `p` for `n` steps or until idle, recycling events.
fn run_steps(p: &mut Platform, n: u64) {
    for _ in 0..n {
        let ev = p.step().expect("platform steps");
        let done = ev.is_idle();
        p.recycle(ev);
        if done {
            break;
        }
    }
}

/// Seeded property: for random drive sequences and random (small) budgets,
/// spill followed by the surviving ring reconstructs the oracle's history
/// record for record — same sequence numbers, names, times, and values.
#[test]
fn ring_plus_spill_reconstruct_the_oracle_history() {
    let names = ["irq.core0", "dma.busy", "tick", "agc_lock"];
    for seed in [0xB07_u64, 0x5EED, 0xFACE] {
        let mut rng = XorShift64Star::new(seed);
        let budget = rng.u64_in(2, 16) as usize * TRACE_RECORD_BYTES;

        let mut bounded = SignalBoard::new();
        bounded.set_trace_budget(budget);
        let spill = CollectSpill::default();
        bounded.attach_trace_spill(Box::new(spill.clone()));
        let mut oracle = SignalBoard::new();
        oracle.set_trace_mode(TraceMode::Unbounded);

        for step in 0..rng.u64_in(200, 600) {
            let name = names[rng.u64_in(0, names.len() as u64 - 1) as usize];
            let value = rng.u64_in(0, 3) as i64;
            let at = Time::from_ns(step + 1);
            assert_eq!(
                bounded.drive(name, at, value),
                oracle.drive(name, at, value),
                "seed {seed:#x}: edge detection diverged at step {step}"
            );
        }

        let full: Vec<(u64, String, SignalChange)> = oracle
            .trace_records()
            .map(|(seq, name, c)| (seq, name.to_string(), c))
            .collect();
        let mut rebuilt = spill.0.lock().unwrap().clone();
        rebuilt.extend(
            bounded
                .trace_records()
                .map(|(seq, name, c)| (seq, name.to_string(), c)),
        );
        assert_eq!(
            rebuilt, full,
            "seed {seed:#x}, budget {budget}B: spill + ring must equal the oracle history"
        );
        assert!(
            bounded.trace_stats().evicted > 0,
            "seed {seed:#x}: the budget was sized to force evictions"
        );
    }
}

/// The bounded store is invisible to execution on a real workload: the
/// car-radio platform under the default bounded budget produces the same
/// state checksum, a byte-identical full image, and the same watchpoint
/// stop sequence as the unbounded oracle.
#[test]
fn bounded_store_is_invisible_on_car_radio() {
    let build = |mode: TraceMode| {
        let mut p = build_car_radio(SchedulerMode::Calendar);
        p.set_trace_mode(mode);
        if let TraceMode::Bounded { .. } = mode {
            // Tighten the budget so the run actually overflows the ring.
            p.set_trace_budget(8 * TRACE_RECORD_BYTES);
        }
        let mut dbg = Debugger::new(p);
        dbg.add_watchpoint(Watchpoint::Signal {
            name: "tick0".into(),
            value: None,
        });
        dbg
    };
    let mut bounded = build(TraceMode::default());
    let mut oracle = build(TraceMode::Unbounded);

    for round in 0..40 {
        let a = bounded.run(500).expect("bounded run");
        let b = oracle.run(500).expect("oracle run");
        assert_eq!(a, b, "round {round}: stop reasons diverged");
        assert_eq!(
            bounded.platform().state_checksum(),
            oracle.platform().state_checksum(),
            "round {round}: state checksums diverged"
        );
        if matches!(a, Stop::Finished) {
            break;
        }
    }
    assert!(
        bounded.trace_stats().evicted > 0,
        "the bounded run must have retired history through the ring"
    );
    assert_eq!(bounded.trace_stats().ring_bytes, 8 * TRACE_RECORD_BYTES);
    let img_b = bounded.platform_mut().capture().expect("bounded captures");
    let img_o = oracle.platform_mut().capture().expect("oracle captures");
    assert_eq!(
        img_b, img_o,
        "images must be byte-identical: history is checkpoint-excluded in both modes"
    );
}

/// The E12 fault campaign run from a bounded-store image produces a
/// verdict table bit-identical to the unbounded oracle's at 1/2/4/8
/// worker threads.
#[test]
fn e12_verdicts_match_the_oracle_at_every_thread_count() {
    let fault_site = |mode: TraceMode| {
        let (mut p, timer, mb, dma) = build_e12();
        p.set_trace_mode(mode);
        let mut guard = 0;
        while !p.dma_in_flight(dma) {
            p.step().expect("fault-free run steps");
            guard += 1;
            assert!(guard < 10_000, "DMA never started");
        }
        for _ in 0..8 {
            p.step().expect("fault-free run steps");
        }
        (p.capture().expect("fault site captures"), timer, mb, dma)
    };
    let (oracle_img, timer, mb, dma) = fault_site(TraceMode::Unbounded);
    let (bounded_img, ..) = fault_site(TraceMode::Bounded {
        budget_bytes: 4 * TRACE_RECORD_BYTES,
    });
    assert_eq!(
        bounded_img, oracle_img,
        "both retention policies must checkpoint to the same bytes"
    );

    let faults = generate_faults(
        0xE12,
        48,
        &FaultSpace {
            cores: 2,
            periph_pages: vec![timer, mb],
            dma_pages: vec![dma],
            mem_lo: 0x100,
            mem_hi: 0x2FF,
        },
    );
    let cfg = |threads| CampaignConfig {
        budget_steps: 6_000,
        output_addr: 0x200,
        output_words: 0x60,
        detect_addr: 0x210,
        threads,
    };
    let reference = run_campaign(&oracle_img, &faults, cfg(1), None).expect("oracle campaign");
    for threads in [1, 2, 4, 8] {
        let bounded =
            run_campaign(&bounded_img, &faults, cfg(threads), None).expect("bounded campaign");
        assert_eq!(
            reference.verdict_table(),
            bounded.verdict_table(),
            "verdicts diverged from the oracle at {threads} threads"
        );
    }
}

/// A bus platform with a periodic timer interrupting core 0 and a DMA
/// engine streaming into shared memory — the awkward-state testbed for
/// checkpointing under eviction pressure.
fn build_irq_dma_platform() -> (Platform, usize) {
    let mut p = PlatformBuilder::new()
        .cores(2, Frequency::mhz(100))
        .shared_words(2048)
        .build()
        .expect("irq/dma platform builds");
    let timer = p.add_timer("tick");
    let dma = p.add_dma("stream");
    let page_base = |page: usize| 0xF000_0000u32 + (page as u32) * 0x100;
    let asm0 = format!(
        "isr: addi r6, r6, 1\nrti\n\
         main: movi r10, {timer:#x}\nmovi r1, 900\nst r1, r10, 0\n\
         movi r1, 0\nst r1, r10, 3\nmovi r1, 0\nst r1, r10, 4\n\
         movi r1, 1\nst r1, r10, 1\n\
         movi r14, {dma:#x}\nmovi r1, 0x40\nst r1, r14, 0\n\
         movi r1, 0x400\nst r1, r14, 1\nmovi r1, 96\nst r1, r14, 2\n\
         movi r1, 1\nst r1, r14, 3\n\
         movi r1, 0\nmovi r2, 100000\n\
         loop: ld r3, r1, 0x100\nadd r4, r4, r3\nst r4, r1, 0x180\n\
         addi r1, r1, 1\nblt r1, r2, loop\nhalt\n",
        timer = page_base(timer),
        dma = page_base(dma),
    );
    p.load_program(0, assemble(&asm0).expect("core 0 assembles"), 2)
        .expect("core 0 loads");
    p.core_mut(0)
        .expect("core 0 exists")
        .set_irq_vector(Some(0));
    let asm1 = "movi r1, 0\nmovi r2, 100000\n\
                loop: ld r3, r1, 0x240\nadd r4, r4, r3\nst r4, r1, 0x2C0\n\
                addi r1, r1, 1\nblt r1, r2, loop\nhalt\n";
    p.load_program(1, assemble(asm1).expect("core 1 assembles"), 0)
        .expect("core 1 loads");
    (p, dma)
}

/// Full and delta images taken mid-DMA under heavy eviction pressure must
/// restore bit-identically — the pending transfer is architectural state,
/// the retired history is not.
#[test]
fn mid_dma_roundtrip_survives_eviction_pressure() {
    let (mut p, dma) = build_irq_dma_platform();
    p.set_trace_budget(2 * TRACE_RECORD_BYTES);
    let spill = CollectSpill::default();
    p.attach_trace_spill(Box::new(spill.clone()));
    // Overflow the two-record ring before the awkward state arrives, so the
    // captures below happen under genuine eviction pressure.
    for i in 1..=32 {
        p.debug_drive_signal("stress", i);
    }
    assert!(p.trace_stats().evicted > 0);
    let base = BaseImage::new(p.capture().expect("base captures")).expect("base decodes");
    let mut guard = 0;
    while !p.dma_in_flight(dma) {
        run_steps(&mut p, 1);
        guard += 1;
        assert!(guard < 10_000, "DMA never started");
    }
    run_steps(&mut p, 5);
    assert!(p.dma_in_flight(dma), "transfer must still be in flight");

    let delta = p.capture_delta().expect("delta captures");
    let full = p.capture().expect("full captures");
    let mut via_full = Platform::from_image(&full).expect("full image restores");
    let mut via_delta = Platform::from_image(base.image()).expect("base restores");
    via_delta
        .restore_delta(&base, &delta)
        .expect("delta restores");
    assert_eq!(via_full.state_checksum(), via_delta.state_checksum());
    assert_eq!(via_full.state_checksum(), p.state_checksum());
    for i in 0..2_000 {
        let ea = via_full.step().expect("full-restored platform steps");
        let eb = via_delta.step().expect("delta-restored platform steps");
        assert_eq!(ea, eb, "step {i} diverged between full and delta restore");
        let done = ea.is_idle();
        via_full.recycle(ea);
        via_delta.recycle(eb);
        if done {
            break;
        }
    }
    assert!(
        p.trace_stats().evicted > 0,
        "the two-record budget must have forced evictions"
    );
}

/// Time-travel rewinds from a pending-IRQ edge state reproduce recorded
/// checksums exactly under a two-record trace budget, and deterministic
/// replay never re-delivers a spilled record (exactly-once across rewinds).
#[test]
fn pending_irq_rewind_is_exact_and_spills_exactly_once() {
    let (mut p, _) = build_irq_dma_platform();
    p.set_trace_budget(2 * TRACE_RECORD_BYTES);
    let spill = CollectSpill::default();
    p.attach_trace_spill(Box::new(spill.clone()));

    // Step to a pending-but-untaken timer interrupt.
    let mut guard = 0;
    loop {
        let ev = p.step().expect("steps to timer expiry");
        let fired = matches!(ev.kind, StepKind::PeriphEvent { .. });
        p.recycle(ev);
        if fired && p.core(0).expect("core 0 exists").irq_pending() != 0 {
            break;
        }
        guard += 1;
        assert!(guard < 50_000, "timer interrupt never became pending");
    }

    let mut dbg = Debugger::new(p);
    dbg.enable_time_travel(16, 64).expect("time travel enables");
    let origin = dbg.platform().steps();
    let mut checksums = vec![dbg.platform().state_checksum()];
    for _ in 0..200 {
        dbg.step().expect("forward step");
        checksums.push(dbg.platform().state_checksum());
    }
    let spilled_high_water = dbg.trace_stats().spilled;

    for target in [origin + 150, origin + 40, origin + 96] {
        assert!(
            dbg.rewind_to_step(target).expect("rewind succeeds"),
            "step {target} is within the retained horizon"
        );
        assert_eq!(
            dbg.platform().state_checksum(),
            checksums[(target - origin) as usize],
            "rewind to step {target} diverged from the forward run"
        );
        assert!(
            dbg.trace_stats().spilled <= spilled_high_water,
            "replay below the eviction frontier must not re-spill"
        );
    }
    assert_eq!(
        dbg.trace_stats().spilled,
        spill.0.lock().unwrap().len() as u64,
        "spill counter and delivered records must agree"
    );
    // Replay past the old frontier resumes spilling new sequence numbers
    // exactly where it left off — no duplicates in the stream.
    for _ in 0..200 {
        dbg.step().expect("re-run forward");
    }
    let delivered = spill.0.lock().unwrap();
    let seqs: Vec<u64> = delivered.iter().map(|(seq, _, _)| *seq).collect();
    let mut deduped = seqs.clone();
    deduped.dedup();
    assert_eq!(seqs, deduped, "a sequence number was spilled twice");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "spill stream must be strictly ordered"
    );
}
