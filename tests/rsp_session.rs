//! End-to-end GDB-RSP session parity test.
//!
//! Drives a full debug session over the in-memory duplex transport —
//! attach, read registers, set a breakpoint, continue, hit, rewind with
//! `monitor step-back` — and asserts the state seen over the wire is
//! **bit-identical** to the same sequence performed directly through the
//! `vpdebug` API on a second instance of the same deterministic platform.

use mpsoc_suite::gdbrsp::packet::from_hex;
use mpsoc_suite::gdbrsp::{duplex_pair, serve, DebugTarget, RspClient, Session, NUM_REGS, PC_REG};
use mpsoc_suite::vpdebug::{Debugger, Stop};

/// Hex-encodes a monitor command the way GDB's `qRcmd` does.
fn qrcmd(cmd: &str) -> String {
    let hex: String = cmd.bytes().map(|b| format!("{b:02x}")).collect();
    format!("qRcmd,{hex}")
}

/// Decodes a `qRcmd` reply (hex-encoded console text).
fn qrcmd_text(reply: &str) -> String {
    String::from_utf8(from_hex(reply).expect("qRcmd reply is hex")).expect("utf8")
}

/// Decodes a `g` reply into the NUM_REGS raw 64-bit register values.
fn decode_g(reply: &str) -> Vec<u64> {
    let bytes = from_hex(reply).expect("g reply is hex");
    assert_eq!(bytes.len(), NUM_REGS * 8, "g carries all registers");
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

#[test]
fn rsp_session_matches_direct_vpdebug_bit_for_bit() {
    const BREAK_PC: u32 = 3; // the race loop head
    let platform = || mpsoc_suite::apps::testbed::by_name("race").expect("race platform builds");

    // --- Wire side: full protocol over the duplex transport. -------------
    let (server_end, client_end) = duplex_pair();
    let server = std::thread::spawn(move || {
        let mut session = Session::new(DebugTarget::new(Debugger::new(platform())));
        let mut end = server_end;
        serve(&mut session, &mut end).expect("serve loop");
    });
    let mut gdb = RspClient::new(client_end);

    assert!(gdb.command("qSupported").unwrap().contains("PacketSize"));
    assert_eq!(gdb.command("QStartNoAckMode").unwrap(), "OK");
    assert_eq!(gdb.command("?").unwrap(), "S05");

    // Attach-time registers: everything is at reset.
    let at_reset = decode_g(&gdb.command("g").unwrap());
    assert!(at_reset.iter().all(|&r| r == 0), "reset state is clean");

    // Enable time travel, set the breakpoint, continue to the hit.
    let out = qrcmd_text(&gdb.command(&qrcmd("time-travel 4 64")).unwrap());
    assert!(out.contains("time travel on"), "{out}");
    assert_eq!(gdb.command(&format!("Z0,{BREAK_PC:x},4")).unwrap(), "OK");
    let stop = gdb.command("c").unwrap();
    assert!(
        stop.starts_with("T05swbreak:"),
        "breakpoint stop, got {stop}"
    );

    let at_break = decode_g(&gdb.command("g").unwrap());
    assert_eq!(
        at_break[PC_REG],
        u64::from(BREAK_PC),
        "stopped at the loop head"
    );
    let sum_at_break = qrcmd_text(&gdb.command(&qrcmd("state-checksum")).unwrap());

    // One step forward, then rewind: the step-back must restore the
    // at-breakpoint machine exactly.
    gdb.command("s").unwrap();
    let sum_stepped = qrcmd_text(&gdb.command(&qrcmd("state-checksum")).unwrap());
    assert_ne!(sum_stepped, sum_at_break, "the step changed the platform");
    let out = qrcmd_text(&gdb.command(&qrcmd("step-back")).unwrap());
    assert!(out.contains("at step"), "{out}");
    let rewound = decode_g(&gdb.command("g").unwrap());
    assert_eq!(
        rewound, at_break,
        "step-back restored registers bit-identically"
    );
    let sum_rewound = qrcmd_text(&gdb.command(&qrcmd("state-checksum")).unwrap());
    assert_eq!(sum_rewound, sum_at_break, "whole-platform state restored");

    assert_eq!(gdb.command("D").unwrap(), "OK");
    server.join().expect("server thread");

    // --- Direct side: same sequence straight through vpdebug. ------------
    let mut dbg = Debugger::new(platform());
    dbg.enable_time_travel(4, 64).expect("time travel on");
    for core in 0..dbg.platform().num_cores() {
        dbg.add_breakpoint(core, BREAK_PC);
    }
    match dbg.run(1_000_000).expect("direct run") {
        Stop::Breakpoint { pc, .. } => assert_eq!(pc, BREAK_PC),
        other => panic!("expected a breakpoint, got {other:?}"),
    }

    // Register-file parity with the wire session, bit for bit (the `g`
    // packet reported core 0, the session's default thread).
    let core = dbg.core_regs(0).expect("core 0");
    let mut direct: Vec<u64> = core.regs().iter().map(|&w| w as u64).collect();
    direct.push(u64::from(core.pc()));
    assert_eq!(
        at_break, direct,
        "wire and direct registers are bit-identical"
    );

    // Whole-platform parity: the checksum GDB saw is the checksum the
    // direct API computes at the same deterministic stop.
    let direct_sum = dbg.platform().state_checksum();
    assert_eq!(
        sum_at_break.trim(),
        format!("{direct_sum:#018x}"),
        "wire and direct state checksums agree"
    );
}
