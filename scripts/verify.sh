#!/usr/bin/env bash
# Tier-1 verification for the suite. CI runs this script verbatim
# (.github/workflows/ci.yml); run it locally before pushing.
#
# The build is hermetic: no network access and no external crates, so every
# step below works offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tracked files intact =="
# A deleted-but-uncommitted tracked file builds fine locally (stale
# target/) yet breaks a fresh checkout; fail fast instead.
deleted=$(git status --porcelain | grep -E '^( D|D )' || true)
if [ -n "$deleted" ]; then
  echo "error: tracked files are deleted but not committed:" >&2
  echo "$deleted" >&2
  exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "== delta checkpoint round-trip =="
cargo test -q --test delta_roundtrip

echo "== exploration engine cross-layer equivalence =="
cargo test -q --test explore_equivalence

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== bench smoke (sim_fastpath) =="
cargo run --release -q -p mpsoc-bench --bin sim_fastpath -- --smoke

echo "== fault-injection campaign (E12) =="
cargo run --release -q -p mpsoc-bench --bin e12

echo "verify: OK"
