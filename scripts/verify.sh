#!/usr/bin/env bash
# Tier-1 verification for the suite. CI runs this script verbatim
# (.github/workflows/ci.yml); run it locally before pushing.
#
# The build is hermetic: no network access and no external crates, so every
# step below works offline. Each stage is wall-clock timed and a summary
# table prints at the end, so a slow CI run points straight at its stage.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGE_NAMES=()
STAGE_SECS=()

stage() {
  local name="$1"
  shift
  echo "== $name =="
  local t0=$SECONDS
  "$@"
  STAGE_NAMES+=("$name")
  STAGE_SECS+=($((SECONDS - t0)))
}

summary() {
  echo
  echo "== stage timing =="
  local total=0 i
  for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-44s %4ds\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
    total=$((total + STAGE_SECS[i]))
  done
  printf '  %-44s %4ds\n' "total" "$total"
}
trap summary EXIT

check_tracked_files() {
  # A deleted-but-uncommitted tracked file builds fine locally (stale
  # target/) yet breaks a fresh checkout; fail fast instead.
  local deleted
  deleted=$(git status --porcelain | grep -E '^( D|D )' || true)
  if [ -n "$deleted" ]; then
    echo "error: tracked files are deleted but not committed:" >&2
    echo "$deleted" >&2
    exit 1
  fi
}

doc_deny_warnings() {
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
}

stage "tracked files intact" check_tracked_files
stage "cargo fmt --check" cargo fmt --check
stage "cargo clippy (deny warnings)" cargo clippy --workspace --all-targets -- -D warnings
stage "cargo build --release" cargo build --release
stage "cargo test" cargo test -q
stage "cargo test --workspace" cargo test --workspace -q
stage "delta checkpoint round-trip" cargo test -q --test delta_roundtrip
stage "exploration engine cross-layer equivalence" cargo test -q --test explore_equivalence
stage "bounded trace store vs unbounded oracle" cargo test -q --test trace_equivalence
stage "cargo doc (deny warnings)" doc_deny_warnings
stage "bench smoke (sim_fastpath)" \
  cargo run --release -q -p mpsoc-bench --bin sim_fastpath -- --smoke
stage "fault-injection campaign (E12)" cargo run --release -q -p mpsoc-bench --bin e12
# The joint mapping x topology sweep over generated .soc platforms; writes
# the Pareto-front artifact target/E13_joint_dse.json (uploaded by CI) and
# asserts the front is bit-identical at 1/2/4/8 threads.
stage "joint mapping x topology DSE (E13 smoke)" \
  cargo run --release -q -p mpsoc-bench --bin e13 -- --smoke
# The headless platform suite: scripted debug sessions through the GDB-RSP
# stack, with JUnit/JSON verdicts under target/mpsoc-test/ (CI uploads
# them as artifacts).
stage "headless platform suite (mpsoc-test)" \
  cargo run --release -q -p mpsoc-apps --bin mpsoc-test

echo "verify: OK"
